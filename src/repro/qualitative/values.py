"""Qualitative values and interval-valued (uncertain) qualitative values.

A :class:`QualitativeValue` is a label anchored in its quantity space.
A :class:`QualitativeRange` represents epistemic uncertainty about a
value as a contiguous label interval (e.g. "LM is somewhere between L
and VH") — the object the sensitivity analysis of Sec. V-A manipulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from .spaces import QuantitySpace, QuantitySpaceError


@dataclass(frozen=True)
class QualitativeValue:
    """A single label in a quantity space."""

    space: QuantitySpace
    label: str

    def __post_init__(self):
        self.space.index(self.label)  # validate

    @property
    def rank(self) -> int:
        return self.space.index(self.label)

    def _check_space(self, other: "QualitativeValue") -> None:
        if self.space.labels != other.space.labels:
            raise QuantitySpaceError(
                "cannot compare values across spaces %r and %r"
                % (self.space.name, other.space.name)
            )

    def __lt__(self, other: "QualitativeValue") -> bool:
        self._check_space(other)
        return self.rank < other.rank

    def __le__(self, other: "QualitativeValue") -> bool:
        self._check_space(other)
        return self.rank <= other.rank

    def __gt__(self, other: "QualitativeValue") -> bool:
        return not self.__le__(other)

    def __ge__(self, other: "QualitativeValue") -> bool:
        return not self.__lt__(other)

    def shift(self, amount: int) -> "QualitativeValue":
        return QualitativeValue(self.space, self.space.shift(self.label, amount))

    def __str__(self) -> str:
        return self.label


@dataclass(frozen=True)
class QualitativeRange:
    """A contiguous interval of labels, modelling an uncertain value."""

    space: QuantitySpace
    low: str
    high: str

    def __post_init__(self):
        if self.space.index(self.low) > self.space.index(self.high):
            raise QuantitySpaceError(
                "range bounds out of order: %s..%s" % (self.low, self.high)
            )

    @classmethod
    def exact(cls, space: QuantitySpace, label: str) -> "QualitativeRange":
        return cls(space, label, label)

    @classmethod
    def full(cls, space: QuantitySpace) -> "QualitativeRange":
        return cls(space, space.bottom, space.top)

    @property
    def is_exact(self) -> bool:
        return self.low == self.high

    def labels(self) -> Tuple[str, ...]:
        return self.space.between(self.low, self.high)

    def __iter__(self) -> Iterator[QualitativeValue]:
        for label in self.labels():
            yield QualitativeValue(self.space, label)

    def __contains__(self, label: object) -> bool:
        if isinstance(label, QualitativeValue):
            label = label.label
        return label in self.labels()

    def __len__(self) -> int:
        return len(self.labels())

    def widen(self, steps: int = 1) -> "QualitativeRange":
        """Expand both bounds by ``steps`` labels (saturating)."""
        return QualitativeRange(
            self.space,
            self.space.shift(self.low, -steps),
            self.space.shift(self.high, steps),
        )

    def intersect(self, other: "QualitativeRange") -> "QualitativeRange":
        low = max(self.space.index(self.low), self.space.index(other.low))
        high = min(self.space.index(self.high), self.space.index(other.high))
        if low > high:
            raise QuantitySpaceError(
                "empty intersection of %s and %s" % (self, other)
            )
        return QualitativeRange(
            self.space, self.space.labels[low], self.space.labels[high]
        )

    def union(self, other: "QualitativeRange") -> "QualitativeRange":
        """Smallest contiguous range covering both."""
        low = min(self.space.index(self.low), self.space.index(other.low))
        high = max(self.space.index(self.high), self.space.index(other.high))
        return QualitativeRange(
            self.space, self.space.labels[low], self.space.labels[high]
        )

    def __str__(self) -> str:
        if self.is_exact:
            return self.low
        return "%s..%s" % (self.low, self.high)

"""Terminal/markdown reporting of framework artifacts."""

from .document import assessment_document
from .serialize import (
    assessment_to_dict,
    plan_to_dict,
    register_to_dict,
    report_to_dict,
    scenario_to_dict,
)
from .report import (
    analysis_results_report,
    assessment_report,
    epa_report_table,
    proof_report,
    propagation_path_report,
    risk_matrix_report,
    risk_register_report,
    unsat_core_report,
)
from .tables import render_markdown, render_matrix_grid, render_table

__all__ = [
    "analysis_results_report",
    "assessment_document",
    "assessment_to_dict",
    "assessment_report",
    "epa_report_table",
    "plan_to_dict",
    "proof_report",
    "register_to_dict",
    "report_to_dict",
    "propagation_path_report",
    "render_markdown",
    "render_matrix_grid",
    "scenario_to_dict",
    "render_table",
    "risk_matrix_report",
    "risk_register_report",
    "unsat_core_report",
]

"""Markdown assessment documents.

The paper inspects results "in a form of a Jupyter Notebook"; this
builder produces the equivalent shareable artifact: a single markdown
document with the model inventory, scenario analysis, risk register,
propagation explanations and the mitigation strategy — the hand-over
document an SME analyst would archive or attach to a ticket.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..epa.explain import explain_outcome
from ..risk.matrix import ora_risk_matrix
from .tables import render_markdown


def assessment_document(result, title: Optional[str] = None) -> str:
    """Render an ``AssessmentResult`` (from :mod:`repro.core`) as markdown."""
    lines: List[str] = []
    lines.append("# %s" % (title or "Risk Assessment: %s" % result.model.name))
    lines.append("")

    # ---- pipeline audit -------------------------------------------------
    lines.append("## Assessment pipeline")
    lines.append("")
    lines.append(
        render_markdown(
            ["phase", "step", "summary"],
            [[p.number, p.name, p.summary] for p in result.phases],
        )
    )
    lines.append("")

    # ---- model inventory -------------------------------------------------
    lines.append("## System model")
    lines.append("")
    lines.append(
        render_markdown(
            ["component", "name", "type", "layer"],
            [
                [e.identifier, e.name, e.type.label, e.layer.value]
                for e in sorted(result.model.elements, key=lambda e: e.identifier)
            ],
        )
    )
    lines.append("")
    if result.validation.diagnostics:
        lines.append("### Validation diagnostics")
        lines.append("")
        for diagnostic in result.validation:
            lines.append("- %s" % diagnostic)
        lines.append("")

    # ---- hazards ----------------------------------------------------------
    lines.append("## Hazard identification")
    lines.append("")
    lines.append(
        "%d scenarios analyzed, %d violate requirements."
        % (len(result.report), len(result.hazards))
    )
    lines.append("")
    if result.hazards:
        lines.append(
            render_markdown(
                ["scenario", "violated", "severity rank"],
                [
                    [
                        "`%s`" % ("+".join(o.key()) or "nominal"),
                        ", ".join(sorted(o.violated)),
                        o.severity_rank,
                    ]
                    for o in result.hazards
                ],
            )
        )
        lines.append("")

    # ---- risk register -----------------------------------------------------
    lines.append("## Risk register")
    lines.append("")
    lines.append(
        render_markdown(
            ["scenario", "LEF", "LM", "risk", "violates"],
            [
                [
                    "`%s`" % entry.scenario,
                    entry.loss_event_frequency,
                    entry.loss_magnitude,
                    "**%s**" % entry.risk,
                    ", ".join(entry.violated_requirements),
                ]
                for entry in result.register
            ],
        )
    )
    lines.append("")
    worst = result.register.worst()
    if worst is not None:
        lines.append(
            "Worst scenario: `%s` at risk **%s** (via the O-RA matrix: "
            "LM=%s x LEF=%s)."
            % (
                worst.scenario,
                worst.risk,
                worst.loss_magnitude,
                worst.loss_event_frequency,
            )
        )
        lines.append("")

    # ---- explanations --------------------------------------------------------
    top = result.hazards[:3]
    if top:
        lines.append("## Why the top hazards happen")
        lines.append("")
        for outcome in top:
            explanation = explain_outcome(outcome, result.model)
            lines.append("### `%s`" % ("+".join(outcome.key()) or "nominal"))
            lines.append("")
            lines.append(explanation.headline)
            for entry in explanation.propagation:
                lines.append("- %s" % entry)
            lines.append("")

    # ---- mitigation strategy ----------------------------------------------
    lines.append("## Mitigation strategy")
    lines.append("")
    if result.plan is None:
        lines.append("No mitigation plan was computed.")
    else:
        lines.append(
            "Deploy: %s (cost %d), blocking %d of %d scenarios."
            % (
                ", ".join("`%s`" % m for m in sorted(result.plan.deployed)),
                result.plan.cost,
                len(result.plan.blocked),
                len(result.plan.blocked) + len(result.plan.unblocked),
            )
        )
        if result.cost_benefit is not None:
            lines.append("")
            lines.append(
                "Cost-benefit: avoided loss %d vs plan cost %d -> net %+d (%s)."
                % (
                    result.cost_benefit.avoided_loss,
                    result.cost_benefit.plan_cost,
                    result.cost_benefit.net_benefit,
                    "worthwhile"
                    if result.cost_benefit.worthwhile
                    else "not worthwhile",
                )
            )
    lines.append("")

    # ---- appendix -------------------------------------------------------------
    lines.append("## Appendix: O-RA risk matrix (Table I)")
    lines.append("")
    matrix = ora_risk_matrix()
    lines.append(
        render_markdown(
            ["LM \\ LEF"] + list(matrix.column_space.labels),
            [
                [row] + [matrix.classify(row, c) for c in matrix.column_space.labels]
                for row in reversed(matrix.row_space.labels)
            ],
        )
    )
    lines.append("")
    return "\n".join(lines)

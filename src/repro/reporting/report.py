"""Report builders for the framework's artifacts.

Renders the paper's tables and the pipeline outputs in terminal-friendly
form: the O-RA risk matrix (Table I), the case-study analysis results
(Table II layout), risk registers, mitigation plans and full assessment
reports.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..epa.results import EpaReport, ScenarioOutcome
from ..risk.assessment import RiskRegister
from ..risk.matrix import RiskMatrix
from .tables import render_matrix_grid, render_table


def risk_matrix_report(matrix: RiskMatrix) -> str:
    """Table I layout: Loss Magnitude rows top-down from VH to VL."""
    rows_top_down = list(reversed(matrix.row_space.labels))
    grid = render_matrix_grid(
        rows_top_down,
        list(matrix.column_space.labels),
        matrix.classify,
        corner="%s \\ %s" % (matrix.row_space.name, matrix.column_space.name),
    )
    return "%s risk matrix\n%s" % (matrix.name, grid)


def analysis_results_report(rows: Sequence["object"]) -> str:
    """Table II layout for the case study's :class:`TableRow` entries."""
    headers = ["", "F1", "F2", "F3", "F4", "M1", "M2", "R1", "R2"]
    return render_table(
        headers,
        [row.cells() for row in rows],
        title="Analysis Results (Table II)",
    )


def epa_report_table(report: EpaReport, max_rows: Optional[int] = None) -> str:
    """Generic scenario/violation table for any EPA report."""
    headers = ["scenario", "faults", "violated", "severity"]
    rows = []
    for outcome in report.outcomes[: max_rows or len(report.outcomes)]:
        rows.append(
            [
                "+".join(outcome.key()) or "(nominal)",
                str(outcome.fault_count),
                ", ".join(sorted(outcome.violated)) or "-",
                str(outcome.severity_rank),
            ]
        )
    return render_table(headers, rows, title="EPA scenario analysis")


def risk_register_report(register: RiskRegister) -> str:
    headers = ["scenario", "LEF", "LM", "Risk", "violates"]
    rows = [
        [
            entry.scenario,
            entry.loss_event_frequency,
            entry.loss_magnitude,
            entry.risk,
            ", ".join(entry.violated_requirements) or "-",
        ]
        for entry in register
    ]
    return render_table(headers, rows, title="Risk register (worst first)")


def propagation_path_report(outcome: ScenarioOutcome) -> str:
    """Human-readable propagation paths of one scenario."""
    if not outcome.paths:
        return "no propagation paths recorded"
    lines = []
    for requirement, steps in sorted(outcome.paths.items()):
        chain = " -> ".join(
            [steps[0].source] + [step.target for step in steps]
        )
        lines.append("%s: %s" % (requirement, chain))
    return "\n".join(lines)


def proof_report(root: "object", title: str = "") -> str:
    """A provenance proof DAG as a titled terminal block.

    ``root`` is a :class:`repro.provenance.ProofNode`; rendering goes
    through :func:`repro.provenance.format_proof`.
    """
    from ..provenance import format_proof

    header = title or "Proof of %s" % (root.atom,)
    return "%s\n%s\n%s" % (header, "-" * len(header), format_proof(root))


def unsat_core_report(
    core: Iterable[object], title: str = "Unsat core"
) -> str:
    """An unsat core as a titled bullet list.

    Accepts ``(atom, bool)`` assumption pairs (the shape of
    ``Control.unsat_core``) or plain identifiers.
    """
    lines = [title, "-" * len(title)]
    entries = list(core)
    if not entries:
        lines.append("(empty: unsatisfiable without any assumptions)")
    for entry in entries:
        if isinstance(entry, tuple) and len(entry) == 2:
            head, value = entry
            lines.append("  - %s = %s" % (head, "true" if value else "false"))
        else:
            lines.append("  - %s" % (entry,))
    return "\n".join(lines)


def assessment_report(result: "object") -> str:
    """Full pipeline report (``AssessmentResult`` from repro.core)."""
    sections: List[str] = []
    sections.append("ASSESSMENT REPORT: %s" % result.model.name)
    sections.append("")
    sections.append("Pipeline phases")
    sections.append("---------------")
    sections.extend(str(phase) for phase in result.phases)
    sections.append("")
    sections.append(epa_report_table(result.report, max_rows=25))
    sections.append("")
    sections.append(risk_register_report(result.register))
    if result.plan is not None:
        sections.append("")
        sections.append("Mitigation plan: %s" % result.plan)
    if result.cost_benefit is not None:
        sections.append("Cost-benefit: %s" % result.cost_benefit)
    return "\n".join(sections)

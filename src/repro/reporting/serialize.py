"""JSON-friendly serialization of assessment artifacts.

Tooling around the framework (dashboards, ticketing integrations, diff
tools between assessment runs) needs machine-readable output next to the
human-readable tables; these converters produce plain dict/list
structures ready for ``json.dumps``.
"""

from __future__ import annotations

from typing import Dict, List

from ..epa.results import EpaReport, ScenarioOutcome
from ..mitigation.optimizer import MitigationPlan
from ..risk.assessment import RiskRegister


def scenario_to_dict(outcome: ScenarioOutcome) -> Dict[str, object]:
    return {
        "faults": sorted(str(f) for f in outcome.active_faults),
        "violated": sorted(outcome.violated),
        "erroneous": {
            component: sorted(kinds)
            for component, kinds in sorted(outcome.erroneous.items())
        },
        "detected_at": sorted(outcome.detected_at),
        "severity_rank": outcome.severity_rank,
        "paths": {
            requirement: [
                {"source": step.source, "target": step.target}
                for step in steps
            ]
            for requirement, steps in sorted(outcome.paths.items())
        },
    }


def report_to_dict(report: EpaReport) -> Dict[str, object]:
    return {
        "requirements": list(report.requirements),
        "active_mitigations": {
            component: list(mitigations)
            for component, mitigations in sorted(
                report.active_mitigations.items()
            )
        },
        "scenario_count": len(report),
        "violating_count": len(report.violating()),
        "scenarios": [scenario_to_dict(o) for o in report.outcomes],
        "violation_counts": report.violation_counts(),
        "criticality": report.criticality(),
    }


def register_to_dict(register: RiskRegister) -> List[Dict[str, object]]:
    return [
        {
            "scenario": entry.scenario,
            "loss_event_frequency": entry.loss_event_frequency,
            "loss_magnitude": entry.loss_magnitude,
            "risk": entry.risk,
            "violated_requirements": list(entry.violated_requirements),
            "mutations": list(entry.mutations),
        }
        for entry in register
    ]


def plan_to_dict(plan: MitigationPlan) -> Dict[str, object]:
    return {
        "deployed": sorted(plan.deployed),
        "cost": plan.cost,
        "blocked": sorted(plan.blocked),
        "unblocked": sorted(plan.unblocked),
        "residual_risk_weight": plan.residual_risk_weight,
        "complete": plan.complete,
    }


def assessment_to_dict(result) -> Dict[str, object]:
    """Serialize an ``AssessmentResult`` (from :mod:`repro.core`)."""
    payload: Dict[str, object] = {
        "model": {
            "name": result.model.name,
            "elements": len(result.model.elements),
            "relationships": len(result.model.relationships),
        },
        "phases": [
            {"number": p.number, "name": p.name, "summary": p.summary}
            for p in result.phases
        ],
        "validation": {
            "ok": result.validation.ok,
            "diagnostics": [str(d) for d in result.validation],
        },
        "mutations": [
            {
                "component": m.component,
                "fault": m.fault,
                "behaviour": m.behaviour,
                "origin_kind": m.origin_kind,
                "origin": m.origin,
                "severity": m.severity,
            }
            for m in result.mutations
        ],
        "report": report_to_dict(result.report),
        "register": register_to_dict(result.register),
    }
    payload["plan"] = (
        plan_to_dict(result.plan) if result.plan is not None else None
    )
    payload["cost_benefit"] = (
        {
            "plan_cost": result.cost_benefit.plan_cost,
            "avoided_loss": result.cost_benefit.avoided_loss,
            "residual_loss": result.cost_benefit.residual_loss,
            "net_benefit": result.cost_benefit.net_benefit,
            "worthwhile": result.cost_benefit.worthwhile,
        }
        if result.cost_benefit is not None
        else None
    )
    return payload

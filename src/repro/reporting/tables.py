"""Plain-text table rendering.

The paper inspects results "in a form of a Jupyter Notebook"; in a
library setting the equivalent is terminal/markdown tables.  These
helpers render aligned ASCII and GitHub-markdown tables used by the
report builders and the benchmark harness.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Aligned ASCII table with a header separator."""
    materialized = [[str(cell) for cell in row] for row in rows]
    columns = len(headers)
    for row in materialized:
        if len(row) != columns:
            raise ValueError(
                "row has %d cells, expected %d" % (len(row), columns)
            )
    widths = [len(str(header)) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(
            cell.ljust(widths[index]) for index, cell in enumerate(cells)
        ).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_row([str(h) for h in headers]))
    lines.append("-+-".join("-" * width for width in widths))
    for row in materialized:
        lines.append(format_row(row))
    return "\n".join(lines)


def render_markdown(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """GitHub-flavoured markdown table."""
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        cells = [str(cell) for cell in row]
        if len(cells) != len(headers):
            raise ValueError("row width mismatch")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def render_matrix_grid(
    row_labels: Sequence[str],
    column_labels: Sequence[str],
    cell: "callable",
    corner: str = "",
) -> str:
    """Render a labelled 2-D grid (risk matrices), rows top-down."""
    headers = [corner] + [str(c) for c in column_labels]
    rows = []
    for row_label in row_labels:
        rows.append(
            [str(row_label)]
            + [str(cell(row_label, column)) for column in column_labels]
        )
    return render_table(headers, rows)

"""Qualitative risk quantization (paper Sec. IV-B, V-A).

The O-RA 5x5 risk matrix (Table I), the IEC 61508 risk-class matrix, the
Open FAIR attribute tree (Fig. 2) with uncertainty-propagating
derivation, sensitivity analysis of risk factors, and the scenario risk
register coupling EPA results to risk labels.
"""

from .assessment import (
    RiskEntry,
    RiskRegister,
    frequency_of_attack,
    frequency_of_simultaneous,
    magnitude_of_violations,
)
from .fair import (
    ATTRIBUTES,
    LEAVES,
    FairDerivation,
    FairError,
    FairModel,
    combine_frequency,
    combine_magnitude,
    combine_vulnerability,
)
from .matrix import (
    RiskMatrix,
    RiskMatrixError,
    iec61508_risk_matrix,
    matrix_from_mapping,
    ora_risk_matrix,
)
from .sil import (
    SilRecommendation,
    classify_from_ora,
    classify_hazard,
    sil_register,
)
from .sensitivity import (
    SensitivityResult,
    full_factorial,
    one_at_a_time,
    rank_factors,
    requires_further_evaluation,
)

__all__ = [
    "ATTRIBUTES",
    "LEAVES",
    "FairDerivation",
    "FairError",
    "FairModel",
    "RiskEntry",
    "RiskMatrix",
    "RiskMatrixError",
    "RiskRegister",
    "SensitivityResult",
    "SilRecommendation",
    "classify_from_ora",
    "classify_hazard",
    "combine_frequency",
    "combine_magnitude",
    "combine_vulnerability",
    "frequency_of_attack",
    "frequency_of_simultaneous",
    "full_factorial",
    "iec61508_risk_matrix",
    "magnitude_of_violations",
    "matrix_from_mapping",
    "one_at_a_time",
    "ora_risk_matrix",
    "rank_factors",
    "sil_register",
    "requires_further_evaluation",
]

"""Scenario risk quantization (paper Fig. 1 step 6, Sec. IV-B).

Couples the EPA results to the qualitative risk instruments: each
analyzed scenario gets a Loss Event Frequency estimate (from how easily
its faults/attacks activate) and a Loss Magnitude (from the severity of
the requirement violations it causes), combined through the O-RA matrix
into the scenario's Risk label.  The resulting :class:`RiskRegister` is
the prioritization artifact the paper motivates ("prioritize the faults
and vulnerabilities based on their severity and potential impact").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..qualitative.spaces import five_level_scale
from .matrix import RiskMatrix, ora_risk_matrix

Scale = five_level_scale()


@dataclass(frozen=True)
class RiskEntry:
    """One prioritized scenario in the risk register."""

    scenario: str
    description: str
    loss_event_frequency: str
    loss_magnitude: str
    risk: str
    violated_requirements: Tuple[str, ...] = ()
    mutations: Tuple[str, ...] = ()

    def __str__(self) -> str:
        return "%s: LEF=%s LM=%s -> Risk=%s (violates: %s)" % (
            self.scenario,
            self.loss_event_frequency,
            self.loss_magnitude,
            self.risk,
            ", ".join(self.violated_requirements) or "-",
        )


class RiskRegister:
    """Scenario risks, ordered worst-first."""

    def __init__(self, matrix: Optional[RiskMatrix] = None):
        self._matrix = matrix or ora_risk_matrix()
        self._entries: List[RiskEntry] = []

    def add(
        self,
        scenario: str,
        loss_event_frequency: str,
        loss_magnitude: str,
        description: str = "",
        violated_requirements: Sequence[str] = (),
        mutations: Sequence[str] = (),
    ) -> RiskEntry:
        risk = self._matrix.classify(loss_magnitude, loss_event_frequency)
        entry = RiskEntry(
            scenario,
            description,
            loss_event_frequency,
            loss_magnitude,
            risk,
            tuple(violated_requirements),
            tuple(mutations),
        )
        self._entries.append(entry)
        return entry

    @property
    def entries(self) -> List[RiskEntry]:
        return sorted(
            self._entries,
            key=lambda e: (-Scale.index(e.risk), e.scenario),
        )

    def worst(self) -> Optional[RiskEntry]:
        entries = self.entries
        return entries[0] if entries else None

    def above(self, threshold: str) -> List[RiskEntry]:
        """Entries at or above a risk label — the 'fix first' list."""
        rank = Scale.index(threshold)
        return [e for e in self.entries if Scale.index(e.risk) >= rank]

    def by_scenario(self, scenario: str) -> RiskEntry:
        for entry in self._entries:
            if entry.scenario == scenario:
                return entry
        raise KeyError("no entry for scenario %r" % scenario)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self.entries)


# ----------------------------------------------------------------------
# qualitative estimators
# ----------------------------------------------------------------------
_SEVERITY_TO_LM = {"VL": "VL", "L": "L", "M": "M", "H": "H", "VH": "VH"}

#: simultaneous independent fault activations get rarer with count —
#: the paper's S5-vs-S7 observation ("the potential probability of the
#: simultaneous occurrence of all faults is much lower")
def frequency_of_simultaneous(count: int, base: str = "M") -> str:
    """LEF estimate for a scenario activating ``count`` independent
    faults: each extra simultaneous fault steps the frequency down."""
    if count <= 0:
        return "VL"
    return Scale.shift(base, -(count - 1))


def magnitude_of_violations(
    violated: Sequence[str],
    requirement_magnitudes: Mapping[str, str],
    default: str = "M",
) -> str:
    """LM of a scenario: the worst magnitude among violated requirements
    (VL when nothing is violated)."""
    if not violated:
        return "VL"
    ranks = [
        Scale.index(requirement_magnitudes.get(name, default))
        for name in violated
    ]
    return Scale.labels[max(ranks)]


def frequency_of_attack(difficulties: Sequence[str], base: str = "H") -> str:
    """LEF estimate for an attack chain from step difficulties.

    Harder steps lower the event frequency; the chain is as frequent as
    its hardest step allows.
    """
    penalty = 0
    for difficulty in difficulties:
        penalty += {"L": 0, "M": 1, "H": 2}.get(difficulty, 1)
    return Scale.shift(base, -penalty)

"""The Open FAIR risk-attribute tree (paper Fig. 2).

O-RA decomposes Risk into a tree of qualitative attributes::

    Risk
    ├── Loss Event Frequency (LEF)
    │   ├── Threat Event Frequency (TEF)
    │   │   ├── Contact Frequency (CF)
    │   │   └── Probability of Action (PoA)
    │   └── Vulnerability (VULN)
    │       ├── Threat Capability (TCap)
    │       └── Resistance Strength (RS)
    └── Loss Magnitude (LM)
        ├── Primary Loss (PL)
        └── Secondary Risk (SR)
            ├── Secondary Loss Event Frequency (SLEF)
            └── Secondary Loss Magnitude (SLM)

Every attribute lives on the VL..VH scale.  Interior nodes combine their
children with qualitative rules; Risk itself uses the O-RA matrix
(Table I).  The derivation accepts uncertain inputs
(:class:`~repro.qualitative.values.QualitativeRange`) and then returns
the output *range* — which is what the Sec. V-A sensitivity analysis
inspects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..qualitative.spaces import QuantitySpace, five_level_scale
from ..qualitative.values import QualitativeRange
from .matrix import RiskMatrix, ora_risk_matrix

Scale = five_level_scale()

LabelOrRange = Union[str, QualitativeRange]

#: the ten leaf attributes of Fig. 2
LEAVES = (
    "contact_frequency",
    "probability_of_action",
    "threat_capability",
    "resistance_strength",
    "primary_loss",
    "secondary_lef",
    "secondary_lm",
)

#: all attribute names, leaves and derived
ATTRIBUTES = LEAVES + (
    "tef",
    "vulnerability",
    "lef",
    "secondary_risk",
    "lm",
    "risk",
)


class FairError(Exception):
    """Raised for unknown attributes or labels."""


def _rank(label: str) -> int:
    return Scale.index(label)


def _label(rank: int) -> str:
    return Scale.clamp(rank)


def combine_frequency(left: str, right: str) -> str:
    """TEF from CF and PoA; LEF from TEF and VULN.

    An event needs both contact *and* action (conjunctive), so the
    qualitative rule is the minimum of the two factors — the standard
    conservative reading of FAIR's multiplicative relation on ordinal
    scales.
    """
    return _label(min(_rank(left), _rank(right)))


def combine_vulnerability(threat_capability: str, resistance_strength: str) -> str:
    """Vulnerability compares attacker capability against resistance.

    The qualitative rule maps the rank difference onto the scale:
    capability far above resistance -> VH susceptibility, far below ->
    VL, equal -> M.
    """
    difference = _rank(threat_capability) - _rank(resistance_strength)
    return _label(2 + max(-2, min(2, difference)))


def combine_magnitude(primary: str, secondary: str) -> str:
    """LM aggregates primary and secondary loss: the dominant one."""
    return _label(max(_rank(primary), _rank(secondary)))


@dataclass
class FairDerivation:
    """A full derivation: every attribute's resulting label range."""

    values: Dict[str, QualitativeRange]

    def label(self, attribute: str) -> str:
        """Exact label of an attribute (error if still uncertain)."""
        value = self.range(attribute)
        if not value.is_exact:
            raise FairError(
                "attribute %r is uncertain (%s); use .range()" % (attribute, value)
            )
        return value.low

    def range(self, attribute: str) -> QualitativeRange:
        try:
            return self.values[attribute]
        except KeyError:
            raise FairError("unknown attribute %r" % attribute) from None

    @property
    def risk(self) -> QualitativeRange:
        return self.values["risk"]

    def __str__(self) -> str:
        parts = ["%s=%s" % (name, self.values[name]) for name in ATTRIBUTES]
        return " ".join(parts)


class FairModel:
    """Evaluator of the Fig. 2 attribute tree."""

    def __init__(self, matrix: Optional[RiskMatrix] = None):
        self._matrix = matrix or ora_risk_matrix()

    def derive(self, **leaves: LabelOrRange) -> FairDerivation:
        """Derive every attribute from leaf assignments.

        Leaves may be exact labels or :class:`QualitativeRange` values;
        uncertainty propagates: a derived attribute's range is the set of
        outcomes over all combinations of the input ranges.  Unknown
        leaves default to the full VL..VH range.
        """
        ranges: Dict[str, QualitativeRange] = {}
        for name in LEAVES:
            value = leaves.pop(name, None)
            if value is None:
                ranges[name] = QualitativeRange.full(Scale)
            elif isinstance(value, QualitativeRange):
                ranges[name] = value
            else:
                ranges[name] = QualitativeRange.exact(Scale, str(value))
        if leaves:
            raise FairError(
                "unknown leaf attribute(s): %s" % ", ".join(sorted(leaves))
            )
        ranges["tef"] = _lift(
            combine_frequency,
            ranges["contact_frequency"],
            ranges["probability_of_action"],
        )
        ranges["vulnerability"] = _lift(
            combine_vulnerability,
            ranges["threat_capability"],
            ranges["resistance_strength"],
        )
        ranges["lef"] = _lift(
            combine_frequency, ranges["tef"], ranges["vulnerability"]
        )
        ranges["secondary_risk"] = _lift(
            self._matrix_rule, ranges["secondary_lm"], ranges["secondary_lef"]
        )
        ranges["lm"] = _lift(
            combine_magnitude, ranges["primary_loss"], ranges["secondary_risk"]
        )
        ranges["risk"] = _lift(self._matrix_rule, ranges["lm"], ranges["lef"])
        return FairDerivation(ranges)

    def risk_label(self, loss_magnitude: str, loss_event_frequency: str) -> str:
        """Direct Table I lookup (when LM/LEF are assessed directly)."""
        return self._matrix.classify(loss_magnitude, loss_event_frequency)

    def _matrix_rule(self, magnitude: str, frequency: str) -> str:
        return self._matrix.classify(magnitude, frequency)


def _lift(
    rule: Callable[[str, str], str],
    left: QualitativeRange,
    right: QualitativeRange,
) -> QualitativeRange:
    """Apply a binary label rule over ranges, returning the outcome range."""
    outcomes = sorted(
        {
            Scale.index(rule(a.label, b.label))
            for a in left
            for b in right
        }
    )
    return QualitativeRange(
        Scale, Scale.labels[outcomes[0]], Scale.labels[outcomes[-1]]
    )

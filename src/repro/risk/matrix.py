"""Qualitative risk matrices (paper Sec. IV-B).

Two standard instruments:

* the **O-RA 5x5 risk matrix** (Table I of the paper, from The Open
  Group Risk Analysis standard): Loss Magnitude x Loss Event Frequency
  -> Risk, all on the VL/L/M/H/VH scale;
* the **IEC 61508** example risk-class matrix: six likelihood categories
  x four consequence categories -> risk classes I..IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..qualitative.spaces import (
    QuantitySpace,
    QuantitySpaceError,
    consequence_scale_iec61508,
    five_level_scale,
    likelihood_scale_iec61508,
)


class RiskMatrixError(Exception):
    """Raised for malformed matrices or out-of-scale labels."""


@dataclass(frozen=True)
class RiskMatrix:
    """A generic two-factor qualitative lookup matrix.

    ``grid[i][j]`` is the outcome for ``row_space.labels[i]`` (row) and
    ``column_space.labels[j]`` (column).
    """

    name: str
    row_space: QuantitySpace
    column_space: QuantitySpace
    outcome_space: QuantitySpace
    grid: Tuple[Tuple[str, ...], ...]

    def __post_init__(self):
        if len(self.grid) != len(self.row_space.labels):
            raise RiskMatrixError(
                "matrix %r needs %d rows" % (self.name, len(self.row_space.labels))
            )
        for row in self.grid:
            if len(row) != len(self.column_space.labels):
                raise RiskMatrixError(
                    "matrix %r needs %d columns"
                    % (self.name, len(self.column_space.labels))
                )
            for cell in row:
                self.outcome_space.index(cell)  # validate

    def classify(self, row_label: str, column_label: str) -> str:
        """The outcome at (row, column)."""
        return self.grid[self.row_space.index(row_label)][
            self.column_space.index(column_label)
        ]

    def outcomes(self) -> List[Tuple[str, str, str]]:
        """All (row, column, outcome) triples, row-major."""
        result = []
        for row_label in self.row_space.labels:
            for column_label in self.column_space.labels:
                result.append(
                    (row_label, column_label, self.classify(row_label, column_label))
                )
        return result

    def is_monotone(self) -> bool:
        """Outcome never decreases as either factor increases — the
        coherence property a well-formed risk matrix must satisfy."""
        for i, row in enumerate(self.grid):
            for j, cell in enumerate(row):
                rank = self.outcome_space.index(cell)
                if i + 1 < len(self.grid):
                    if self.outcome_space.index(self.grid[i + 1][j]) < rank:
                        return False
                if j + 1 < len(row):
                    if self.outcome_space.index(row[j + 1]) < rank:
                        return False
        return True


def ora_risk_matrix() -> RiskMatrix:
    """Table I of the paper — the O-RA risk matrix, verbatim.

    Rows are Loss Magnitude from VL (bottom) to VH (top in the paper;
    here row index follows the scale order VL..VH), columns Loss Event
    Frequency VL..VH.
    """
    scale = five_level_scale()
    #          LEF:   VL    L     M     H     VH
    grid = (
        ("VL", "VL", "VL", "L", "M"),  # LM = VL
        ("VL", "VL", "L", "M", "H"),  # LM = L
        ("VL", "L", "M", "H", "VH"),  # LM = M
        ("L", "M", "H", "VH", "VH"),  # LM = H
        ("M", "H", "VH", "VH", "VH"),  # LM = VH
    )
    return RiskMatrix(
        "O-RA",
        QuantitySpace("loss_magnitude", scale.labels),
        QuantitySpace("loss_event_frequency", scale.labels),
        QuantitySpace("risk", scale.labels),
        grid,
    )


def iec61508_risk_matrix() -> RiskMatrix:
    """The IEC 61508-5 Annex B example risk-class matrix.

    Outcome classes: ``I`` intolerable, ``II`` undesirable, ``III``
    tolerable (ALARP), ``IV`` negligible.  The outcome space is ordered
    from the most acceptable (IV) to the least (I) so that
    :meth:`RiskMatrix.is_monotone` captures "more likely/more severe is
    never more acceptable".
    """
    likelihood = likelihood_scale_iec61508()
    consequence = consequence_scale_iec61508()
    classes = QuantitySpace("risk_class", ("IV", "III", "II", "I"))
    #               negligible  marginal  critical  catastrophic
    grid = (
        ("IV", "IV", "IV", "IV"),  # incredible
        ("IV", "IV", "III", "III"),  # improbable
        ("III", "III", "III", "II"),  # remote
        ("III", "II", "II", "I"),  # occasional
        ("II", "II", "I", "I"),  # probable
        ("II", "I", "I", "I"),  # frequent
    )
    return RiskMatrix("IEC61508", likelihood, consequence, classes, grid)


def matrix_from_mapping(
    name: str,
    row_space: QuantitySpace,
    column_space: QuantitySpace,
    outcome_space: QuantitySpace,
    cells: Mapping[Tuple[str, str], str],
) -> RiskMatrix:
    """Build a matrix from a {(row, column): outcome} mapping (all cells
    must be present) — the hook for industry-specific calibration
    ("parameters may need to be adjusted based on the nature of the
    industry", Sec. IV-B)."""
    grid: List[Tuple[str, ...]] = []
    for row_label in row_space.labels:
        row: List[str] = []
        for column_label in column_space.labels:
            try:
                row.append(cells[(row_label, column_label)])
            except KeyError:
                raise RiskMatrixError(
                    "missing cell (%s, %s)" % (row_label, column_label)
                ) from None
        grid.append(tuple(row))
    return RiskMatrix(name, row_space, column_space, outcome_space, tuple(grid))

"""Sensitivity analysis of qualitative risk factors (paper Sec. V-A).

"Sensitivity analysis examines how uncertain factors impact the output
by altering its values."  The paper's worked example: with LEF fixed at
L, if LM may be VL or L the Risk stays VL — *insensitive*; if LM ranges
L..VH the Risk varies — *sensitive*, so "further evaluation is
required".

The same machinery also supports the modeling-phase support of
Sec. II-A: ranking which model parameters the overall result is most
sensitive to, so the analyst knows where estimation errors matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..parallel import parallel_map
from ..qualitative.spaces import QuantitySpace
from ..qualitative.values import QualitativeRange

#: a qualitative function of named label factors
LabelFunction = Callable[..., str]


@dataclass(frozen=True)
class SensitivityResult:
    """Outcome of varying one factor while the others stay fixed."""

    factor: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]  # distinct outcomes, in scale order

    @property
    def sensitive(self) -> bool:
        return len(self.outputs) > 1

    @property
    def spread(self) -> int:
        """Number of distinct outcomes minus one (0 = insensitive)."""
        return len(self.outputs) - 1

    def __str__(self) -> str:
        verdict = "sensitive" if self.sensitive else "insensitive"
        return "%s over {%s}: outputs {%s} -> %s" % (
            self.factor,
            ",".join(self.inputs),
            ",".join(self.outputs),
            verdict,
        )


def one_at_a_time(
    function: LabelFunction,
    fixed: Mapping[str, str],
    uncertain: Mapping[str, Iterable[str]],
    outcome_space: QuantitySpace,
    workers: Optional[int] = None,
) -> List[SensitivityResult]:
    """Vary each uncertain factor separately (the paper's method).

    ``fixed`` holds the point values of the certain factors; each entry
    of ``uncertain`` gives the candidate labels of one uncertain factor.
    Factors in both mappings use the ``fixed`` value as the nominal point
    when varying the *other* factors.  ``workers`` evaluates the factors
    on a thread pool (label functions are typically closures over EPA
    engines, so the process backend is out); result order matches the
    sequential run.
    """
    nominal: Dict[str, str] = dict(fixed)
    for factor, labels in uncertain.items():
        if factor not in nominal:
            candidates = list(labels)
            if not candidates:
                raise ValueError("factor %r has no candidate labels" % factor)
            nominal[factor] = candidates[0]

    def vary(item: Tuple[str, Iterable[str]]) -> SensitivityResult:
        factor, labels = item
        outputs = set()
        inputs = tuple(labels)
        for label in inputs:
            assignment = dict(nominal)
            assignment[factor] = label
            outputs.add(function(**assignment))
        ordered = tuple(sorted(outputs, key=outcome_space.index))
        return SensitivityResult(factor, inputs, ordered)

    return parallel_map(
        vary, list(uncertain.items()), workers=workers, backend="thread"
    )


def full_factorial(
    function: LabelFunction,
    fixed: Mapping[str, str],
    uncertain: Mapping[str, Iterable[str]],
    outcome_space: QuantitySpace,
) -> QualitativeRange:
    """The overall outcome range over the full uncertainty product."""
    import itertools

    names = list(uncertain)
    outputs = set()
    for combination in itertools.product(*(uncertain[n] for n in names)):
        assignment = dict(fixed)
        assignment.update(zip(names, combination))
        outputs.add(function(**assignment))
    ranks = sorted(outcome_space.index(label) for label in outputs)
    return QualitativeRange(
        outcome_space,
        outcome_space.labels[ranks[0]],
        outcome_space.labels[ranks[-1]],
    )


def rank_factors(
    results: Sequence[SensitivityResult],
) -> List[SensitivityResult]:
    """Order factors by decreasing spread (tornado-diagram order)."""
    return sorted(results, key=lambda r: (-r.spread, r.factor))


def requires_further_evaluation(
    results: Sequence[SensitivityResult],
) -> List[str]:
    """Factors the paper says need "further evaluation": the sensitive
    ones."""
    return [result.factor for result in rank_factors(results) if result.sensitive]

"""IEC 61508 risk classes and safety-integrity-level guidance.

The paper anchors its qualitative hazard analysis in IEC 61508's
"six categories of the likelihood of occurrence and 4 of consequence
that are combined in a risk class matrix" (Sec. IV-B).  Beyond the
matrix itself (:func:`repro.risk.matrix.iec61508_risk_matrix`), the
standard's workflow derives a *required risk reduction* from the risk
class — expressed as a target Safety Integrity Level (SIL).  This
module provides that mapping, in the spirit of the standard's Annex
examples: informative guidance for the analyst, not certification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..qualitative.spaces import (
    consequence_scale_iec61508,
    likelihood_scale_iec61508,
)
from .matrix import RiskMatrix, iec61508_risk_matrix

#: risk class -> (tolerability, indicative SIL target)
_CLASS_GUIDANCE: Dict[str, Tuple[str, Optional[int]]] = {
    "I": ("intolerable — risk cannot be justified", 4),
    "II": ("undesirable — tolerable only if reduction impracticable", 3),
    "III": ("tolerable if the cost of reduction exceeds the improvement", 2),
    "IV": ("negligible — acceptable as is", None),
}


@dataclass(frozen=True)
class SilRecommendation:
    """Guidance derived from one hazard's IEC 61508 classification."""

    likelihood: str
    consequence: str
    risk_class: str
    tolerability: str
    sil: Optional[int]

    @property
    def acceptable(self) -> bool:
        return self.risk_class == "IV"

    def __str__(self) -> str:
        target = "SIL %d" % self.sil if self.sil else "no SIL required"
        return "%s x %s -> class %s (%s; %s)" % (
            self.likelihood,
            self.consequence,
            self.risk_class,
            self.tolerability,
            target,
        )


def classify_hazard(
    likelihood: str,
    consequence: str,
    matrix: Optional[RiskMatrix] = None,
) -> SilRecommendation:
    """IEC 61508 classification of one hazard."""
    matrix = matrix or iec61508_risk_matrix()
    risk_class = matrix.classify(likelihood, consequence)
    tolerability, sil = _CLASS_GUIDANCE[risk_class]
    return SilRecommendation(
        likelihood, consequence, risk_class, tolerability, sil
    )


#: crude bridge from the O-RA five-level scale onto the IEC scales —
#: lets the security-born LEF/LM labels feed the safety workflow
_ORA_TO_LIKELIHOOD = {
    "VL": "improbable",
    "L": "remote",
    "M": "occasional",
    "H": "probable",
    "VH": "frequent",
}
_ORA_TO_CONSEQUENCE = {
    "VL": "negligible",
    "L": "negligible",
    "M": "marginal",
    "H": "critical",
    "VH": "catastrophic",
}


def classify_from_ora(
    loss_event_frequency: str, loss_magnitude: str
) -> SilRecommendation:
    """Classify a scenario assessed on the O-RA scale (Sec. IV-B's two
    instruments joined: the security labels drive the safety matrix)."""
    return classify_hazard(
        _ORA_TO_LIKELIHOOD[loss_event_frequency],
        _ORA_TO_CONSEQUENCE[loss_magnitude],
    )


def sil_register(entries) -> List[SilRecommendation]:
    """Classify every entry of a :class:`~repro.risk.assessment.RiskRegister`."""
    return [
        classify_from_ora(entry.loss_event_frequency, entry.loss_magnitude)
        for entry in entries
    ]

"""Rough Set Theory (Pawlak) for uncertainty handling (paper Sec. V).

Information/decision systems, indiscernibility, lower/upper
approximations with positive/negative/boundary regions, classification
quality, reducts/core, and decision-rule extraction — the machinery
behind the RST-extended EPA of [32].
"""

from .approximation import (
    Approximation,
    DecisionRule,
    approximate,
    boundary_region,
    core,
    decision_rules,
    is_reduct,
    negative_region,
    positive_region,
    quality_of_classification,
    reducts,
)
from .information_system import (
    DecisionSystem,
    InformationSystem,
    RoughSetError,
)

__all__ = [
    "Approximation",
    "DecisionRule",
    "DecisionSystem",
    "InformationSystem",
    "RoughSetError",
    "approximate",
    "boundary_region",
    "core",
    "decision_rules",
    "is_reduct",
    "negative_region",
    "positive_region",
    "quality_of_classification",
    "reducts",
]

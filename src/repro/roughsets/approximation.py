"""Rough approximations, regions, and reducts.

"The result of the RST approximation consists of three sets": the
positive region (certainly in the concept), the negative region
(certainly not), and the boundary region (undecidable from the available
information) — paper Sec. V-A.  The boundary is where spurious solutions
hide, and shrinking it is what model refinement buys.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from .information_system import (
    DecisionSystem,
    InformationSystem,
    ObjectId,
    RoughSetError,
    Value,
)


@dataclass(frozen=True)
class Approximation:
    """The rough approximation of one concept."""

    concept: FrozenSet[ObjectId]
    lower: FrozenSet[ObjectId]  # positive region of the concept
    upper: FrozenSet[ObjectId]
    universe: FrozenSet[ObjectId]

    @property
    def boundary(self) -> FrozenSet[ObjectId]:
        """Objects undecidable from the available attributes."""
        return self.upper - self.lower

    @property
    def negative(self) -> FrozenSet[ObjectId]:
        """Objects certainly outside the concept."""
        return self.universe - self.upper

    @property
    def is_crisp(self) -> bool:
        """Exactly definable: no boundary."""
        return self.lower == self.upper

    @property
    def accuracy(self) -> float:
        """Pawlak accuracy |lower| / |upper| (1.0 when crisp or empty)."""
        if not self.upper:
            return 1.0
        return len(self.lower) / len(self.upper)


def approximate(
    system: InformationSystem,
    concept: Sequence[ObjectId],
    attributes: Optional[Sequence[str]] = None,
) -> Approximation:
    """Lower/upper approximation of ``concept`` under indiscernibility."""
    target: Set[ObjectId] = set(concept)
    unknown = target - set(system.objects)
    if unknown:
        raise RoughSetError("concept contains unknown objects: %r" % unknown)
    lower: Set[ObjectId] = set()
    upper: Set[ObjectId] = set()
    for block in system.indiscernibility_classes(attributes):
        if block <= target:
            lower |= block
        if block & target:
            upper |= block
    return Approximation(
        frozenset(target),
        frozenset(lower),
        frozenset(upper),
        frozenset(system.objects),
    )


def negative_region(
    system: InformationSystem,
    concept: Sequence[ObjectId],
    attributes: Optional[Sequence[str]] = None,
) -> FrozenSet[ObjectId]:
    """Objects certainly *not* in the concept: U minus the upper approx."""
    approximation = approximate(system, concept, attributes)
    return frozenset(set(system.objects) - approximation.upper)


def positive_region(
    system: DecisionSystem,
    attributes: Optional[Sequence[str]] = None,
) -> FrozenSet[ObjectId]:
    """POS_B(d): union of lower approximations of all decision classes."""
    positive: Set[ObjectId] = set()
    for concept in system.decision_classes().values():
        positive |= approximate(system, concept, attributes).lower
    return frozenset(positive)


def boundary_region(
    system: DecisionSystem,
    attributes: Optional[Sequence[str]] = None,
) -> FrozenSet[ObjectId]:
    """Objects whose decision cannot be determined from ``attributes``."""
    return frozenset(set(system.objects) - positive_region(system, attributes))


def quality_of_classification(
    system: DecisionSystem,
    attributes: Optional[Sequence[str]] = None,
) -> float:
    """Pawlak's gamma: |POS_B(d)| / |U|."""
    if len(system) == 0:
        return 1.0
    return len(positive_region(system, attributes)) / len(system)


# ----------------------------------------------------------------------
# reducts
# ----------------------------------------------------------------------
def is_reduct(system: DecisionSystem, attributes: Sequence[str]) -> bool:
    """A reduct preserves gamma and is minimal w.r.t. set inclusion."""
    full_gamma = quality_of_classification(system)
    if quality_of_classification(system, attributes) != full_gamma:
        return False
    for attribute in attributes:
        remaining = [a for a in attributes if a != attribute]
        if quality_of_classification(system, remaining) == full_gamma:
            return False
    return True


def reducts(system: DecisionSystem) -> List[Tuple[str, ...]]:
    """All reducts by exhaustive subset search (fine for the attribute
    counts of risk tables; exponential in general)."""
    full_gamma = quality_of_classification(system)
    found: List[Tuple[str, ...]] = []
    attributes = system.attributes
    for size in range(1, len(attributes) + 1):
        for subset in itertools.combinations(attributes, size):
            if any(set(r) <= set(subset) for r in found):
                continue  # superset of a known reduct cannot be minimal
            if quality_of_classification(system, subset) == full_gamma:
                found.append(subset)
    return found


def core(system: DecisionSystem) -> FrozenSet[str]:
    """The core: attributes present in every reduct (possibly empty)."""
    all_reducts = reducts(system)
    if not all_reducts:
        return frozenset()
    common = set(all_reducts[0])
    for reduct in all_reducts[1:]:
        common &= set(reduct)
    return frozenset(common)


# ----------------------------------------------------------------------
# decision rules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DecisionRule:
    """An IF conditions THEN decision rule extracted from a table.

    ``certain`` rules come from the positive region (every matching
    object agrees on the decision); ``possible`` rules from the boundary.
    """

    conditions: Tuple[Tuple[str, Value], ...]
    decision: Value
    certain: bool
    support: int

    def matches(self, values: Dict[str, Value]) -> bool:
        return all(values.get(a) == v for a, v in self.conditions)

    def __str__(self) -> str:
        conditions = " & ".join("%s=%s" % (a, v) for a, v in self.conditions)
        kind = "certain" if self.certain else "possible"
        return "IF %s THEN %s=%s [%s, support=%d]" % (
            conditions,
            "decision",
            self.decision,
            kind,
            self.support,
        )


def decision_rules(
    system: DecisionSystem,
    attributes: Optional[Sequence[str]] = None,
) -> List[DecisionRule]:
    """One rule per indiscernibility block and decision it touches."""
    names = tuple(attributes) if attributes is not None else system.attributes
    rules: List[DecisionRule] = []
    for block in system.indiscernibility_classes(names):
        representative = next(iter(block))
        signature = system.signature(representative, names)
        decisions: Dict[Value, int] = {}
        for member in block:
            decision = system.decision(member)
            decisions[decision] = decisions.get(decision, 0) + 1
        certain = len(decisions) == 1
        for decision, support in sorted(
            decisions.items(), key=lambda kv: str(kv[0])
        ):
            rules.append(
                DecisionRule(
                    tuple(zip(names, signature)), decision, certain, support
                )
            )
    return rules

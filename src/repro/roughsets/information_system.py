"""Rough set theory: information and decision systems (Pawlak [29]).

An *information system* is a table of objects described by attributes;
a *decision system* adds a distinguished decision attribute.  Rough set
theory approximates concepts (object sets) by the equivalence classes of
attribute-wise indiscernibility — the paper's instrument for "imprecise,
inconsistent, incomplete, uncertain information" (Sec. V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

Value = Hashable
ObjectId = Hashable


class RoughSetError(Exception):
    """Raised for unknown objects/attributes or malformed tables."""


class InformationSystem:
    """A finite table: objects x attributes -> values."""

    def __init__(self, attributes: Sequence[str]):
        if not attributes:
            raise RoughSetError("need at least one attribute")
        if len(set(attributes)) != len(attributes):
            raise RoughSetError("attribute names must be unique")
        self._attributes: Tuple[str, ...] = tuple(attributes)
        self._rows: Dict[ObjectId, Tuple[Value, ...]] = {}

    @property
    def attributes(self) -> Tuple[str, ...]:
        return self._attributes

    @property
    def objects(self) -> List[ObjectId]:
        return list(self._rows)

    def add(self, object_id: ObjectId, values: Mapping[str, Value]) -> None:
        if object_id in self._rows:
            raise RoughSetError("duplicate object %r" % (object_id,))
        try:
            row = tuple(values[a] for a in self._attributes)
        except KeyError as error:
            raise RoughSetError(
                "object %r missing attribute %s" % (object_id, error)
            ) from None
        self._rows[object_id] = row

    def value(self, object_id: ObjectId, attribute: str) -> Value:
        row = self._row(object_id)
        return row[self._attribute_index(attribute)]

    def _row(self, object_id: ObjectId) -> Tuple[Value, ...]:
        try:
            return self._rows[object_id]
        except KeyError:
            raise RoughSetError("unknown object %r" % (object_id,)) from None

    def _attribute_index(self, attribute: str) -> int:
        try:
            return self._attributes.index(attribute)
        except ValueError:
            raise RoughSetError("unknown attribute %r" % attribute) from None

    # ------------------------------------------------------------------
    # indiscernibility
    # ------------------------------------------------------------------
    def signature(
        self, object_id: ObjectId, attributes: Optional[Sequence[str]] = None
    ) -> Tuple[Value, ...]:
        """The object's value vector restricted to ``attributes``."""
        row = self._row(object_id)
        if attributes is None:
            return row
        indices = [self._attribute_index(a) for a in attributes]
        return tuple(row[i] for i in indices)

    def indiscernibility_classes(
        self, attributes: Optional[Sequence[str]] = None
    ) -> List[FrozenSet[ObjectId]]:
        """The partition induced by attribute-wise equality."""
        classes: Dict[Tuple[Value, ...], Set[ObjectId]] = {}
        for object_id in self._rows:
            classes.setdefault(
                self.signature(object_id, attributes), set()
            ).add(object_id)
        return [frozenset(members) for members in classes.values()]

    def indiscernible(
        self,
        first: ObjectId,
        second: ObjectId,
        attributes: Optional[Sequence[str]] = None,
    ) -> bool:
        return self.signature(first, attributes) == self.signature(
            second, attributes
        )

    def equivalence_class(
        self, object_id: ObjectId, attributes: Optional[Sequence[str]] = None
    ) -> FrozenSet[ObjectId]:
        """[x]_B: everything indiscernible from ``object_id``."""
        target = self.signature(object_id, attributes)
        return frozenset(
            other
            for other in self._rows
            if self.signature(other, attributes) == target
        )

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, object_id: object) -> bool:
        return object_id in self._rows


class DecisionSystem(InformationSystem):
    """An information system with a decision attribute.

    Condition attributes describe the objects; the decision attribute is
    the concept to approximate (e.g. "does this scenario violate the
    requirement").
    """

    def __init__(self, attributes: Sequence[str], decision: str = "decision"):
        if decision in attributes:
            raise RoughSetError(
                "decision attribute %r clashes with a condition attribute"
                % decision
            )
        super().__init__(attributes)
        self.decision_attribute = decision
        self._decisions: Dict[ObjectId, Value] = {}

    def add(
        self,
        object_id: ObjectId,
        values: Mapping[str, Value],
        decision: Optional[Value] = None,
    ) -> None:
        if decision is None:
            if self.decision_attribute not in values:
                raise RoughSetError(
                    "object %r missing decision value" % (object_id,)
                )
            values = dict(values)
            decision = values.pop(self.decision_attribute)
        super().add(object_id, values)
        self._decisions[object_id] = decision

    def decision(self, object_id: ObjectId) -> Value:
        try:
            return self._decisions[object_id]
        except KeyError:
            raise RoughSetError("unknown object %r" % (object_id,)) from None

    def decision_classes(self) -> Dict[Value, FrozenSet[ObjectId]]:
        """Partition of the universe by decision value."""
        classes: Dict[Value, Set[ObjectId]] = {}
        for object_id, decision in self._decisions.items():
            classes.setdefault(decision, set()).add(object_id)
        return {value: frozenset(members) for value, members in classes.items()}

    def concept(self, decision_value: Value) -> FrozenSet[ObjectId]:
        """The object set with a given decision value."""
        return frozenset(
            object_id
            for object_id, decision in self._decisions.items()
            if decision == decision_value
        )

    def is_consistent(
        self, attributes: Optional[Sequence[str]] = None
    ) -> bool:
        """No two indiscernible objects with different decisions."""
        for block in self.indiscernibility_classes(attributes):
            decisions = {self._decisions[o] for o in block}
            if len(decisions) > 1:
                return False
        return True

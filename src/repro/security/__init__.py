"""Security knowledge bases and the attack-scenario space.

Offline reproductions of the collections the paper injects (CVE, CWE,
CAPEC, MITRE ATT&CK for ICS), CVSS v3.1 scoring, the mapping of
techniques/vulnerabilities onto model components as *candidate
mutations* (Fig. 1 step 2), and the attack-scenario-space enumeration of
Sec. IV-A.
"""

from .attack_graph import AttackGraph, AttackGraphError, AttackPath
from .catalogs import (
    AttackPattern,
    CatalogError,
    MitigationEntry,
    SecurityCatalog,
    Tactic,
    Technique,
    Vulnerability,
    Weakness,
)
from .cvss import (
    CvssBase,
    CvssError,
    base_score,
    parse_vector,
    severity_rating,
    to_ora_label,
)
from .data import builtin_catalog, synthetic_catalog
from .mapping import (
    CandidateMutation,
    applicable_techniques,
    applicable_vulnerabilities,
    candidate_mutations,
    mitigations_for_mutation,
    technique_applicable,
)
from .scenario_space import (
    AttackScenario,
    AttackScenarioSpace,
    AttackStep,
    LossEvent,
    ThreatActor,
)

# fleet imports repro.epa lazily (inside functions); keep it last so the
# package namespace above is complete before it loads
from .fleet import (
    FleetSpec,
    build_fleet_model,
    fleet_catalog,
    fleet_engine,
    fleet_fault_mitigations,
    fleet_models,
    fleet_requirements,
)

__all__ = [
    "AttackGraph",
    "AttackGraphError",
    "AttackPath",
    "AttackPattern",
    "AttackScenario",
    "AttackScenarioSpace",
    "AttackStep",
    "CandidateMutation",
    "CatalogError",
    "CvssBase",
    "CvssError",
    "FleetSpec",
    "LossEvent",
    "MitigationEntry",
    "SecurityCatalog",
    "Tactic",
    "Technique",
    "ThreatActor",
    "Vulnerability",
    "Weakness",
    "applicable_techniques",
    "applicable_vulnerabilities",
    "base_score",
    "build_fleet_model",
    "builtin_catalog",
    "candidate_mutations",
    "fleet_catalog",
    "fleet_engine",
    "fleet_fault_mitigations",
    "fleet_models",
    "fleet_requirements",
    "mitigations_for_mutation",
    "parse_vector",
    "severity_rating",
    "synthetic_catalog",
    "technique_applicable",
    "to_ora_label",
]

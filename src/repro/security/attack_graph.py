"""Attack-graph generation from the scenario space.

The related work the paper positions against ([15], [18]) generates
attack graphs from threat models; the same artifact falls out of this
framework's scenario space: nodes are (component, technique) attack
states, edges the feasible next steps along the model's propagation
topology.  The graph supports the usual queries — reachable targets,
shortest/cheapest attack paths, and choke-point ranking — and feeds the
mitigation optimizer (cutting every path = blocking every scenario).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..mitigation.costs import AttackCostModel
from ..modeling.model import SystemModel
from .catalogs import SecurityCatalog
from .mapping import INITIAL_ACCESS_TACTICS, technique_applicable
from .scenario_space import AttackScenarioSpace, AttackStep, ThreatActor

#: the attacker's starting pseudo-node
SOURCE = "__outside__"


class AttackGraphError(Exception):
    """Raised for unknown targets."""


@dataclass(frozen=True)
class AttackPath:
    """One attack path with its estimated attacker cost."""

    steps: Tuple[AttackStep, ...]
    cost: int

    def __str__(self) -> str:
        return " -> ".join(str(step) for step in self.steps) + " [cost %d]" % self.cost


class AttackGraph:
    """A directed graph of attack states."""

    def __init__(
        self,
        model: SystemModel,
        catalog: SecurityCatalog,
        actor: Optional[ThreatActor] = None,
        cost_model: Optional[AttackCostModel] = None,
    ):
        self.model = model
        self.catalog = catalog
        self.actor = actor or ThreatActor("default", "H")
        self.cost_model = cost_model or AttackCostModel()
        self.graph = nx.DiGraph()
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _node(self, step: AttackStep) -> Tuple[str, str]:
        return (step.component, step.technique)

    def _step_cost(self, technique_id: str) -> int:
        technique = self.catalog.technique(technique_id)
        return self.cost_model.chain_cost([technique.difficulty])

    def _build(self) -> None:
        propagation = self.model.propagation_graph()
        self.graph.add_node(SOURCE)
        # entry edges: initial-access techniques on exposed components
        space = AttackScenarioSpace(
            self.model, self.catalog, actors=[self.actor], max_chain=1
        )
        for entry in space.entry_points(self.actor):
            node = self._node(entry)
            self.graph.add_node(node, component=entry.component)
            self.graph.add_edge(
                SOURCE, node, weight=self._step_cost(entry.technique)
            )
        # lateral edges: post-access techniques along propagation edges
        post_access = [
            technique
            for technique in self.catalog.techniques
            if not any(t in INITIAL_ACCESS_TACTICS for t in technique.tactic_ids)
            and self.actor.can_execute(technique)
        ]
        frontier = [n for n in self.graph.nodes if n != SOURCE]
        visited: Set[Tuple[str, str]] = set(frontier)
        while frontier:
            new_frontier: List[Tuple[str, str]] = []
            for component, technique in frontier:
                for successor in sorted(propagation.successors(component)):
                    element = self.model.element(successor)
                    for candidate in post_access:
                        if not technique_applicable(candidate, element):
                            continue
                        node = (successor, candidate.identifier)
                        if node not in visited:
                            visited.add(node)
                            self.graph.add_node(node, component=successor)
                            new_frontier.append(node)
                        self.graph.add_edge(
                            (component, technique),
                            node,
                            weight=self._step_cost(candidate.identifier),
                        )
            frontier = new_frontier

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def states(self) -> List[Tuple[str, str]]:
        return [n for n in self.graph.nodes if n != SOURCE]

    def reachable_components(self) -> FrozenSet[str]:
        """Components an attacker can put into a compromised state."""
        return frozenset(component for component, _ in self.states)

    def can_reach(self, component: str) -> bool:
        return component in self.reachable_components()

    def cheapest_path(self, component: str) -> AttackPath:
        """The minimum-attacker-cost path compromising ``component``."""
        targets = [n for n in self.states if n[0] == component]
        if not targets:
            raise AttackGraphError(
                "component %r is not attacker-reachable" % component
            )
        best: Optional[Tuple[int, List[Tuple[str, str]]]] = None
        for target in targets:
            try:
                cost, path = nx.single_source_dijkstra(
                    self.graph, SOURCE, target, weight="weight"
                )
            except nx.NetworkXNoPath:  # pragma: no cover - targets reachable
                continue
            if best is None or cost < best[0]:
                best = (int(cost), path)
        assert best is not None
        steps = tuple(
            AttackStep(component_, technique)
            for component_, technique in best[1][1:]
        )
        return AttackPath(steps, best[0])

    def all_paths(
        self, component: str, cutoff: int = 5
    ) -> List[AttackPath]:
        """Every simple attack path to ``component`` up to ``cutoff`` hops."""
        paths: List[AttackPath] = []
        targets = [n for n in self.states if n[0] == component]
        for target in targets:
            for node_path in nx.all_simple_paths(
                self.graph, SOURCE, target, cutoff=cutoff
            ):
                steps = tuple(
                    AttackStep(c, t) for c, t in node_path[1:]
                )
                cost = sum(self._step_cost(s.technique) for s in steps)
                paths.append(AttackPath(steps, cost))
        paths.sort(key=lambda p: (p.cost, len(p.steps), str(p)))
        return paths

    def choke_points(self, component: str) -> Dict[str, float]:
        """Technique criticality toward a target: the fraction of attack
        paths each technique appears in (cut candidates for defense)."""
        paths = self.all_paths(component)
        if not paths:
            return {}
        counts: Dict[str, int] = {}
        for path in paths:
            for technique in {s.technique for s in path.steps}:
                counts[technique] = counts.get(technique, 0) + 1
        return {
            technique: count / len(paths)
            for technique, count in sorted(counts.items())
        }

    def cut_mitigations(self, component: str) -> Set[str]:
        """Mitigations that appear on every attack path to the target —
        deploying any of them severs all currently known paths."""
        paths = self.all_paths(component)
        if not paths:
            return set()
        common: Optional[Set[str]] = None
        for path in paths:
            path_mitigations: Set[str] = set()
            for step in path.steps:
                path_mitigations.update(
                    self.catalog.technique(step.technique).mitigation_ids
                )
            common = (
                path_mitigations
                if common is None
                else common & path_mitigations
            )
        return common or set()

    def __len__(self) -> int:
        return len(self.states)

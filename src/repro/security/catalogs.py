"""Security knowledge-base datatypes and the catalog container.

The paper injects "validated information on the component security
faults and the local impacts of attacks ... from validated public
collections" (Fig. 1 step 2): CVE, CWE, CAPEC and the MITRE ATT&CK (ICS)
matrix.  These classes model the slices of those collections the
framework consumes; :mod:`repro.security.data` ships an offline snapshot
(see DESIGN.md on the substitution for the live feeds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple


class CatalogError(Exception):
    """Raised for unknown identifiers or duplicate registrations."""


@dataclass(frozen=True)
class Weakness:
    """A CWE-style weakness class."""

    identifier: str  # e.g. "CWE-787"
    name: str
    description: str = ""
    #: component-type labels this weakness typically afflicts
    applies_to: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Vulnerability:
    """A CVE-style concrete vulnerability."""

    identifier: str  # e.g. "CVE-2023-0001" (synthetic in the snapshot)
    description: str
    weakness_ids: Tuple[str, ...] = ()
    #: CVSS v3.1 base vector, e.g. "AV:N/AC:L/PR:N/UI:R/S:C/C:H/I:H/A:H"
    cvss_vector: str = ""
    #: software product and version range it affects (version-specific
    #: analysis, Sec. VI)
    product: str = ""
    affected_versions: Tuple[str, ...] = ()
    #: fault-mode behaviour its exploitation activates on the component
    induced_behaviour: str = "compromised"


@dataclass(frozen=True)
class AttackPattern:
    """A CAPEC-style attack pattern."""

    identifier: str  # e.g. "CAPEC-98"
    name: str
    description: str = ""
    likelihood: str = "M"  # qualitative O-RA label
    severity: str = "M"
    exploits_weaknesses: Tuple[str, ...] = ()
    #: ATT&CK technique ids realizing this pattern
    techniques: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Tactic:
    """An ATT&CK tactic (column of the matrix)."""

    identifier: str  # e.g. "TA0108"
    name: str
    description: str = ""


@dataclass(frozen=True)
class Technique:
    """An ATT&CK (ICS) technique."""

    identifier: str  # e.g. "T0866"
    name: str
    tactic_ids: Tuple[str, ...]
    description: str = ""
    #: platform / component-type labels the technique targets
    platforms: Tuple[str, ...] = ()
    #: mitigation ids countering this technique
    mitigation_ids: Tuple[str, ...] = ()
    #: fault-mode behaviour a successful technique activates
    induced_behaviour: str = "compromised"
    #: qualitative difficulty for the attacker (drives attack cost)
    difficulty: str = "M"


@dataclass(frozen=True)
class MitigationEntry:
    """An ATT&CK mitigation (e.g. M0917 User Training)."""

    identifier: str
    name: str
    description: str = ""
    #: indicative implementation cost (arbitrary currency units) and
    #: yearly upkeep, used by the cost-benefit optimizer (Sec. IV-D)
    implementation_cost: int = 10
    maintenance_cost: int = 2


class SecurityCatalog:
    """A joinable container over all five collections."""

    def __init__(self, name: str = "catalog"):
        self.name = name
        self._weaknesses: Dict[str, Weakness] = {}
        self._vulnerabilities: Dict[str, Vulnerability] = {}
        self._patterns: Dict[str, AttackPattern] = {}
        self._tactics: Dict[str, Tactic] = {}
        self._techniques: Dict[str, Technique] = {}
        self._mitigations: Dict[str, MitigationEntry] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _register(self, table: Dict[str, object], entry, kind: str) -> None:
        if entry.identifier in table:
            raise CatalogError("%s %r already registered" % (kind, entry.identifier))
        table[entry.identifier] = entry

    def add_weakness(self, entry: Weakness) -> Weakness:
        self._register(self._weaknesses, entry, "weakness")
        return entry

    def add_vulnerability(self, entry: Vulnerability) -> Vulnerability:
        self._register(self._vulnerabilities, entry, "vulnerability")
        return entry

    def add_pattern(self, entry: AttackPattern) -> AttackPattern:
        self._register(self._patterns, entry, "attack pattern")
        return entry

    def add_tactic(self, entry: Tactic) -> Tactic:
        self._register(self._tactics, entry, "tactic")
        return entry

    def add_technique(self, entry: Technique) -> Technique:
        self._register(self._techniques, entry, "technique")
        return entry

    def add_mitigation(self, entry: MitigationEntry) -> MitigationEntry:
        self._register(self._mitigations, entry, "mitigation")
        return entry

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def weakness(self, identifier: str) -> Weakness:
        return self._lookup(self._weaknesses, identifier, "weakness")

    def vulnerability(self, identifier: str) -> Vulnerability:
        return self._lookup(self._vulnerabilities, identifier, "vulnerability")

    def pattern(self, identifier: str) -> AttackPattern:
        return self._lookup(self._patterns, identifier, "attack pattern")

    def tactic(self, identifier: str) -> Tactic:
        return self._lookup(self._tactics, identifier, "tactic")

    def technique(self, identifier: str) -> Technique:
        return self._lookup(self._techniques, identifier, "technique")

    def mitigation(self, identifier: str) -> MitigationEntry:
        return self._lookup(self._mitigations, identifier, "mitigation")

    def _lookup(self, table, identifier: str, kind: str):
        try:
            return table[identifier]
        except KeyError:
            raise CatalogError("unknown %s %r" % (kind, identifier)) from None

    @property
    def weaknesses(self) -> List[Weakness]:
        return list(self._weaknesses.values())

    @property
    def vulnerabilities(self) -> List[Vulnerability]:
        return list(self._vulnerabilities.values())

    @property
    def patterns(self) -> List[AttackPattern]:
        return list(self._patterns.values())

    @property
    def tactics(self) -> List[Tactic]:
        return list(self._tactics.values())

    @property
    def techniques(self) -> List[Technique]:
        return list(self._techniques.values())

    @property
    def mitigations(self) -> List[MitigationEntry]:
        return list(self._mitigations.values())

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------
    def techniques_in_tactic(self, tactic_id: str) -> List[Technique]:
        self.tactic(tactic_id)
        return [
            technique
            for technique in self._techniques.values()
            if tactic_id in technique.tactic_ids
        ]

    def mitigations_for_technique(self, technique_id: str) -> List[MitigationEntry]:
        technique = self.technique(technique_id)
        return [self.mitigation(m) for m in technique.mitigation_ids]

    def techniques_countered_by(self, mitigation_id: str) -> List[Technique]:
        self.mitigation(mitigation_id)
        return [
            technique
            for technique in self._techniques.values()
            if mitigation_id in technique.mitigation_ids
        ]

    def techniques_for_platform(self, platform: str) -> List[Technique]:
        return [
            technique
            for technique in self._techniques.values()
            if not technique.platforms or platform in technique.platforms
        ]

    def vulnerabilities_with_weakness(self, weakness_id: str) -> List[Vulnerability]:
        self.weakness(weakness_id)
        return [
            vulnerability
            for vulnerability in self._vulnerabilities.values()
            if weakness_id in vulnerability.weakness_ids
        ]

    def vulnerabilities_for_product(
        self, product: str, version: Optional[str] = None
    ) -> List[Vulnerability]:
        """Version-specific lookup (the Sec. VI refinement motivation)."""
        matches = []
        for vulnerability in self._vulnerabilities.values():
            if vulnerability.product != product:
                continue
            if (
                version is not None
                and vulnerability.affected_versions
                and version not in vulnerability.affected_versions
            ):
                continue
            matches.append(vulnerability)
        return matches

    def patterns_exploiting(self, weakness_id: str) -> List[AttackPattern]:
        self.weakness(weakness_id)
        return [
            pattern
            for pattern in self._patterns.values()
            if weakness_id in pattern.exploits_weaknesses
        ]

    def patterns_using_technique(self, technique_id: str) -> List[AttackPattern]:
        self.technique(technique_id)
        return [
            pattern
            for pattern in self._patterns.values()
            if technique_id in pattern.techniques
        ]

    def statistics(self) -> Dict[str, int]:
        return {
            "weaknesses": len(self._weaknesses),
            "vulnerabilities": len(self._vulnerabilities),
            "patterns": len(self._patterns),
            "tactics": len(self._tactics),
            "techniques": len(self._techniques),
            "mitigations": len(self._mitigations),
        }

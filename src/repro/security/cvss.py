"""CVSS v3.1 base-score computation.

The paper notes that "vulnerabilities in CVE are measured by the Common
Vulnerability Scoring System (CVSS)" [12].  This implements the full
v3.1 base-metric equation from the FIRST specification, plus the
qualitative severity rating scale — which is also how numeric CVSS
scores are *quantized* onto the framework's qualitative risk labels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping


class CvssError(Exception):
    """Raised for malformed CVSS vectors."""


_METRIC_VALUES: Dict[str, Dict[str, float]] = {
    "AV": {"N": 0.85, "A": 0.62, "L": 0.55, "P": 0.2},
    "AC": {"L": 0.77, "H": 0.44},
    # PR depends on scope; handled specially below
    "UI": {"N": 0.85, "R": 0.62},
    "C": {"H": 0.56, "L": 0.22, "N": 0.0},
    "I": {"H": 0.56, "L": 0.22, "N": 0.0},
    "A": {"H": 0.56, "L": 0.22, "N": 0.0},
}

_PR_UNCHANGED = {"N": 0.85, "L": 0.62, "H": 0.27}
_PR_CHANGED = {"N": 0.85, "L": 0.68, "H": 0.5}

_REQUIRED = ("AV", "AC", "PR", "UI", "S", "C", "I", "A")


@dataclass(frozen=True)
class CvssBase:
    """Parsed CVSS v3.1 base metrics."""

    attack_vector: str
    attack_complexity: str
    privileges_required: str
    user_interaction: str
    scope: str
    confidentiality: str
    integrity: str
    availability: str

    @property
    def scope_changed(self) -> bool:
        return self.scope == "C"


def parse_vector(vector: str) -> CvssBase:
    """Parse ``AV:N/AC:L/PR:N/UI:R/S:C/C:H/I:H/A:H`` (optionally prefixed
    with ``CVSS:3.1/``)."""
    text = vector.strip()
    if text.startswith("CVSS:3.1/") or text.startswith("CVSS:3.0/"):
        text = text.split("/", 1)[1]
    metrics: Dict[str, str] = {}
    for chunk in text.split("/"):
        if not chunk:
            continue
        if ":" not in chunk:
            raise CvssError("bad metric chunk %r" % chunk)
        key, value = chunk.split(":", 1)
        metrics[key] = value
    missing = [key for key in _REQUIRED if key not in metrics]
    if missing:
        raise CvssError("vector missing metrics: %s" % ", ".join(missing))
    base = CvssBase(
        metrics["AV"],
        metrics["AC"],
        metrics["PR"],
        metrics["UI"],
        metrics["S"],
        metrics["C"],
        metrics["I"],
        metrics["A"],
    )
    _validate(base)
    return base


def _validate(base: CvssBase) -> None:
    checks = (
        ("AV", base.attack_vector, _METRIC_VALUES["AV"]),
        ("AC", base.attack_complexity, _METRIC_VALUES["AC"]),
        ("PR", base.privileges_required, _PR_UNCHANGED),
        ("UI", base.user_interaction, _METRIC_VALUES["UI"]),
        ("S", base.scope, {"U": 0, "C": 0}),
        ("C", base.confidentiality, _METRIC_VALUES["C"]),
        ("I", base.integrity, _METRIC_VALUES["I"]),
        ("A", base.availability, _METRIC_VALUES["A"]),
    )
    for name, value, allowed in checks:
        if value not in allowed:
            raise CvssError("invalid %s value %r" % (name, value))


def _roundup(value: float) -> float:
    """CVSS roundup: smallest number with one decimal >= value."""
    scaled = int(round(value * 100000))
    if scaled % 10000 == 0:
        return scaled / 100000.0
    return (math.floor(scaled / 10000) + 1) / 10.0


def base_score(vector_or_base) -> float:
    """CVSS v3.1 base score in [0.0, 10.0]."""
    base = (
        vector_or_base
        if isinstance(vector_or_base, CvssBase)
        else parse_vector(vector_or_base)
    )
    impact_subscore = 1 - (
        (1 - _METRIC_VALUES["C"][base.confidentiality])
        * (1 - _METRIC_VALUES["I"][base.integrity])
        * (1 - _METRIC_VALUES["A"][base.availability])
    )
    if base.scope_changed:
        impact = 7.52 * (impact_subscore - 0.029) - 3.25 * (
            impact_subscore - 0.02
        ) ** 15
    else:
        impact = 6.42 * impact_subscore
    pr_values = _PR_CHANGED if base.scope_changed else _PR_UNCHANGED
    exploitability = (
        8.22
        * _METRIC_VALUES["AV"][base.attack_vector]
        * _METRIC_VALUES["AC"][base.attack_complexity]
        * pr_values[base.privileges_required]
        * _METRIC_VALUES["UI"][base.user_interaction]
    )
    if impact <= 0:
        return 0.0
    if base.scope_changed:
        return _roundup(min(1.08 * (impact + exploitability), 10.0))
    return _roundup(min(impact + exploitability, 10.0))


def severity_rating(score: float) -> str:
    """Qualitative severity per the CVSS v3.1 rating scale."""
    if score <= 0.0:
        return "None"
    if score < 4.0:
        return "Low"
    if score < 7.0:
        return "Medium"
    if score < 9.0:
        return "High"
    return "Critical"


def to_ora_label(score: float) -> str:
    """Quantize a CVSS score onto the O-RA VL..VH scale (Sec. IV-B)."""
    if score <= 0.0:
        return "VL"
    if score < 4.0:
        return "L"
    if score < 7.0:
        return "M"
    if score < 9.0:
        return "H"
    return "VH"

"""Offline security knowledge snapshot.

The live CVE/CWE/CAPEC/ATT&CK feeds are network services; this module
ships a curated **synthetic snapshot** with the entries the paper's case
study exercises (Exploitation of Remote Services, the spearphishing
link -> drive-by -> infected workstation chain, User Training and
endpoint-security mitigations) plus enough surrounding structure for the
joins to be meaningful, and a deterministic generator of arbitrarily
large synthetic catalogs for the scaling benchmarks.

Identifiers follow the real collections' numbering style but the entries
are reproductions/synthetic — see DESIGN.md (substitution table).
"""

from __future__ import annotations

import random
from typing import Optional

from .catalogs import (
    AttackPattern,
    MitigationEntry,
    SecurityCatalog,
    Tactic,
    Technique,
    Vulnerability,
    Weakness,
)


def builtin_catalog() -> SecurityCatalog:
    """The snapshot used by the case study and the examples."""
    catalog = SecurityCatalog("builtin-ics-snapshot")

    # --- tactics (ATT&CK for ICS columns) ------------------------------
    for identifier, name in (
        ("TA0108", "Initial Access"),
        ("TA0104", "Execution"),
        ("TA0110", "Persistence"),
        ("TA0109", "Lateral Movement"),
        ("TA0106", "Impair Process Control"),
        ("TA0107", "Inhibit Response Function"),
        ("TA0105", "Impact"),
    ):
        catalog.add_tactic(Tactic(identifier, name))

    # --- mitigations ----------------------------------------------------
    catalog.add_mitigation(
        MitigationEntry(
            "M0917",
            "User Training",
            "Train users to identify social engineering and spearphishing.",
            implementation_cost=8,
            maintenance_cost=3,
        )
    )
    catalog.add_mitigation(
        MitigationEntry(
            "M0949",
            "Endpoint Security",
            "Enterprise endpoint protection (anti-malware, EDR).",
            implementation_cost=15,
            maintenance_cost=5,
        )
    )
    catalog.add_mitigation(
        MitigationEntry(
            "M0930",
            "Network Segmentation",
            "Segment IT and OT networks; restrict lateral movement.",
            implementation_cost=25,
            maintenance_cost=4,
        )
    )
    catalog.add_mitigation(
        MitigationEntry(
            "M0932",
            "Multi-factor Authentication",
            "Require MFA on remote and engineering access.",
            implementation_cost=10,
            maintenance_cost=2,
        )
    )
    catalog.add_mitigation(
        MitigationEntry(
            "M0926",
            "Software Update",
            "Patch management for OT-adjacent hosts.",
            implementation_cost=12,
            maintenance_cost=6,
        )
    )
    catalog.add_mitigation(
        MitigationEntry(
            "M0807",
            "Network Allowlists",
            "Allowlist communication between control devices.",
            implementation_cost=18,
            maintenance_cost=3,
        )
    )

    # --- techniques -----------------------------------------------------
    catalog.add_technique(
        Technique(
            "T0866",
            "Exploitation of Remote Services",
            ("TA0108", "TA0109"),
            "Exploit software vulnerabilities in exposed services to gain "
            "access or move laterally.",
            platforms=("workstation", "controller", "network", "gateway"),
            mitigation_ids=("M0926", "M0930", "M0807"),
            induced_behaviour="compromised",
            difficulty="M",
        )
    )
    catalog.add_technique(
        Technique(
            "T0865",
            "Spearphishing Attachment",
            ("TA0108",),
            "Deliver malware through a crafted e-mail attachment or link.",
            platforms=("workstation",),
            mitigation_ids=("M0917", "M0949"),
            induced_behaviour="compromised",
            difficulty="L",
        )
    )
    catalog.add_technique(
        Technique(
            "T0817",
            "Drive-by Compromise",
            ("TA0108",),
            "Compromise a user's browser through a malicious website.",
            platforms=("workstation",),
            mitigation_ids=("M0917", "M0949", "M0926"),
            induced_behaviour="compromised",
            difficulty="M",
        )
    )
    catalog.add_technique(
        Technique(
            "T0859",
            "Valid Accounts",
            ("TA0109",),
            "Use captured credentials to move laterally between hosts "
            "and services.",
            platforms=(),  # any component with an account surface
            mitigation_ids=("M0932", "M0930"),
            induced_behaviour="compromised",
            difficulty="M",
        )
    )
    catalog.add_technique(
        Technique(
            "T0855",
            "Unauthorized Command Message",
            ("TA0106",),
            "Send crafted command messages to actuators/controllers.",
            platforms=("controller", "actuator", "network"),
            mitigation_ids=("M0807", "M0930", "M0932"),
            induced_behaviour="wrong_output",
            difficulty="H",
        )
    )
    catalog.add_technique(
        Technique(
            "T0856",
            "Spoof Reporting Message",
            ("TA0106",),
            "Falsify process telemetry toward operators.",
            platforms=("sensor", "hmi", "network"),
            mitigation_ids=("M0807", "M0930"),
            induced_behaviour="value_error",
            difficulty="H",
        )
    )
    catalog.add_technique(
        Technique(
            "T0878",
            "Alarm Suppression",
            ("TA0107",),
            "Prevent alarms from reaching the operator.",
            platforms=("hmi",),
            mitigation_ids=("M0930", "M0807"),
            induced_behaviour="omission",
            difficulty="H",
        )
    )
    catalog.add_technique(
        Technique(
            "T0831",
            "Manipulation of Control",
            ("TA0105", "TA0106"),
            "Manipulate physical control logic or setpoints.",
            platforms=("controller", "actuator"),
            mitigation_ids=("M0932", "M0807"),
            induced_behaviour="wrong_output",
            difficulty="H",
        )
    )

    # --- weaknesses -----------------------------------------------------
    catalog.add_weakness(
        Weakness(
            "CWE-787",
            "Out-of-bounds Write",
            "Memory-safety defect enabling code execution.",
            applies_to=("workstation", "controller"),
        )
    )
    catalog.add_weakness(
        Weakness(
            "CWE-79",
            "Improper Neutralization of Input During Web Page Generation",
            "Cross-site scripting in web front-ends (HMIs).",
            applies_to=("hmi", "workstation"),
        )
    )
    catalog.add_weakness(
        Weakness(
            "CWE-306",
            "Missing Authentication for Critical Function",
            "Control functions callable without authentication.",
            applies_to=("controller", "actuator"),
        )
    )
    catalog.add_weakness(
        Weakness(
            "CWE-1188",
            "Initialization of a Resource with an Insecure Default",
            "Insecure default credentials/configurations.",
            applies_to=("controller", "network"),
        )
    )
    catalog.add_weakness(
        Weakness(
            "CWE-20",
            "Improper Input Validation",
            "Untrusted input processed without validation.",
            applies_to=("controller", "hmi", "workstation"),
        )
    )

    # --- attack patterns --------------------------------------------------
    catalog.add_pattern(
        AttackPattern(
            "CAPEC-98",
            "Phishing",
            "Social-engineering delivery of a malicious payload.",
            likelihood="H",
            severity="H",
            exploits_weaknesses=("CWE-20",),
            techniques=("T0865", "T0817"),
        )
    )
    catalog.add_pattern(
        AttackPattern(
            "CAPEC-248",
            "Command Injection",
            "Inject unauthorized commands into a control channel.",
            likelihood="M",
            severity="VH",
            exploits_weaknesses=("CWE-306", "CWE-20"),
            techniques=("T0855", "T0831"),
        )
    )
    catalog.add_pattern(
        AttackPattern(
            "CAPEC-94",
            "Adversary in the Middle",
            "Interpose on a communication channel to read/modify traffic.",
            likelihood="M",
            severity="H",
            exploits_weaknesses=("CWE-1188",),
            techniques=("T0856", "T0878"),
        )
    )
    catalog.add_pattern(
        AttackPattern(
            "CAPEC-137",
            "Parameter Injection",
            "Malformed input corrupts a service's execution.",
            likelihood="M",
            severity="H",
            exploits_weaknesses=("CWE-787", "CWE-20"),
            techniques=("T0866",),
        )
    )

    # --- synthetic CVE entries -------------------------------------------
    catalog.add_vulnerability(
        Vulnerability(
            "CVE-9001-0001",
            "Remote code execution in engineering workstation OS service.",
            weakness_ids=("CWE-787",),
            cvss_vector="AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H",
            product="eng_workstation_os",
            affected_versions=("10.1", "10.2"),
            induced_behaviour="compromised",
        )
    )
    catalog.add_vulnerability(
        Vulnerability(
            "CVE-9001-0002",
            "Browser memory corruption exploitable via malicious site.",
            weakness_ids=("CWE-787", "CWE-20"),
            cvss_vector="AV:N/AC:L/PR:N/UI:R/S:C/C:H/I:H/A:H",
            product="workstation_browser",
            affected_versions=("99.0",),
            induced_behaviour="compromised",
        )
    )
    catalog.add_vulnerability(
        Vulnerability(
            "CVE-9001-0003",
            "PLC runtime accepts unauthenticated control writes.",
            weakness_ids=("CWE-306",),
            cvss_vector="AV:A/AC:L/PR:N/UI:N/S:U/C:N/I:H/A:H",
            product="plc_runtime",
            affected_versions=("2.0", "2.1", "2.2"),
            induced_behaviour="wrong_output",
        )
    )
    catalog.add_vulnerability(
        Vulnerability(
            "CVE-9001-0004",
            "HMI web panel reflected XSS enabling session hijack.",
            weakness_ids=("CWE-79",),
            cvss_vector="AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N",
            product="scada_hmi",
            affected_versions=("5.4",),
            induced_behaviour="value_error",
        )
    )
    catalog.add_vulnerability(
        Vulnerability(
            "CVE-9001-0005",
            "Default credentials on OT network switch management port.",
            weakness_ids=("CWE-1188",),
            cvss_vector="AV:A/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:L",
            product="ot_switch_firmware",
            affected_versions=("1.0",),
            induced_behaviour="compromised",
        )
    )
    return catalog


def synthetic_catalog(
    techniques: int = 50,
    mitigations: int = 15,
    vulnerabilities: int = 100,
    seed: int = 0,
) -> SecurityCatalog:
    """Deterministic synthetic catalog for scaling benchmarks.

    Structure mimics the real matrices: every technique belongs to 1-2
    tactics, is countered by 1-3 mitigations and targets 1-2 platforms.
    """
    rng = random.Random(seed)
    catalog = SecurityCatalog("synthetic-%d" % seed)
    tactic_ids = []
    for index in range(max(3, techniques // 10)):
        identifier = "TA9%03d" % index
        catalog.add_tactic(Tactic(identifier, "Synthetic Tactic %d" % index))
        tactic_ids.append(identifier)
    mitigation_ids = []
    for index in range(mitigations):
        identifier = "M9%03d" % index
        catalog.add_mitigation(
            MitigationEntry(
                identifier,
                "Synthetic Mitigation %d" % index,
                implementation_cost=rng.randint(5, 40),
                maintenance_cost=rng.randint(1, 8),
            )
        )
        mitigation_ids.append(identifier)
    platforms = ("workstation", "controller", "sensor", "actuator", "hmi", "network")
    behaviours = ("compromised", "wrong_output", "omission", "value_error")
    technique_ids = []
    for index in range(techniques):
        identifier = "T9%03d" % index
        catalog.add_technique(
            Technique(
                identifier,
                "Synthetic Technique %d" % index,
                tuple(rng.sample(tactic_ids, rng.randint(1, 2))),
                platforms=tuple(rng.sample(platforms, rng.randint(1, 2))),
                mitigation_ids=tuple(
                    rng.sample(mitigation_ids, rng.randint(1, 3))
                ),
                induced_behaviour=rng.choice(behaviours),
                difficulty=rng.choice(("L", "M", "H")),
            )
        )
        technique_ids.append(identifier)
    weakness_ids = []
    for index in range(max(5, vulnerabilities // 10)):
        identifier = "CWE-9%03d" % index
        catalog.add_weakness(
            Weakness(
                identifier,
                "Synthetic Weakness %d" % index,
                applies_to=tuple(rng.sample(platforms, rng.randint(1, 3))),
            )
        )
        weakness_ids.append(identifier)
    vectors = (
        "AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
        "AV:N/AC:L/PR:N/UI:R/S:C/C:H/I:H/A:H",
        "AV:A/AC:H/PR:L/UI:N/S:U/C:L/I:H/A:L",
        "AV:L/AC:L/PR:H/UI:N/S:U/C:L/I:L/A:L",
    )
    for index in range(vulnerabilities):
        catalog.add_vulnerability(
            Vulnerability(
                "CVE-9%03d-%04d" % (seed, index),
                "Synthetic vulnerability %d" % index,
                weakness_ids=tuple(rng.sample(weakness_ids, rng.randint(1, 2))),
                cvss_vector=rng.choice(vectors),
                product="product_%d" % rng.randint(0, 9),
                affected_versions=("1.%d" % rng.randint(0, 3),),
                induced_behaviour=rng.choice(behaviours),
            )
        )
    for index in range(max(3, techniques // 5)):
        catalog.add_pattern(
            AttackPattern(
                "CAPEC-9%03d" % index,
                "Synthetic Pattern %d" % index,
                likelihood=rng.choice(("L", "M", "H")),
                severity=rng.choice(("M", "H", "VH")),
                exploits_weaknesses=tuple(
                    rng.sample(weakness_ids, rng.randint(1, 2))
                ),
                techniques=tuple(rng.sample(technique_ids, rng.randint(1, 3))),
            )
        )
    return catalog

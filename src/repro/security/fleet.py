"""Synthetic fleet generator: parameterized ArchiMate-style models.

Every bench and test model so far is hand-built at the paper's
case-study scale.  This module generates *fleets* — seeded, layered
CPS models from toy size to ~10^6-scenario scale — so the streaming
enumeration spine (:meth:`repro.epa.engine.EpaEngine.aggregate`,
``docs/streaming.md``) has workloads big enough to stress it.

A :class:`FleetSpec` fixes the shape: ``tiers`` layers of
``components_per_tier`` components each, instantiated from
:func:`~repro.modeling.library.standard_cps_library` roles (an exposed
IT entry tier — gateways, workstations, historians — control tiers in
the middle, a physical tier at the bottom), each component carrying
exactly ``fault_modes_per_component`` synthetic fault modes, and each
component feeding ``connectivity`` successors in the next tier.  The
scenario space of the resulting EPA sweep is a pure counting function
of the spec (:meth:`FleetSpec.scenario_count`), which is what lets
benches dial in "at least N scenarios" exactly.

Catalog sizes ride the same spec: :func:`fleet_catalog` draws a
:func:`~repro.security.data.synthetic_catalog` of the requested size
and grafts an initial-access layer onto it (the synthetic catalog has
no initial-access tactic, which would leave every
:class:`~repro.security.scenario_space.AttackScenarioSpace` over it
empty — fleet entry tiers are public-facing, so the attack-space
differential tests get non-trivial spaces).

Everything is deterministic given ``seed``: two calls with equal specs
produce byte-identical models, catalogs and requirement sets.
:func:`fleet_models` varies the seed to yield a whole fleet of distinct
architectures with one shape.

Exports: :class:`FleetSpec`, :func:`build_fleet_model`,
:func:`fleet_requirements`, :func:`fleet_fault_mitigations`,
:func:`fleet_catalog`, :func:`fleet_engine`, :func:`fleet_models`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Sequence, Tuple

from ..modeling.elements import RelationshipType
from ..modeling.library import standard_cps_library
from ..modeling.model import SystemModel
from ..observability import Tracer
from .catalogs import SecurityCatalog, Tactic, Technique
from .data import synthetic_catalog
from .mapping import INITIAL_ACCESS_TACTICS

#: component-type roles per tier position: the entry tier is the exposed
#: IT perimeter, middle tiers are control layers, the last tier is the
#: physical process
ENTRY_ROLES = ("gateway", "workstation", "historian")
CONTROL_ROLES = ("controller", "network", "hmi", "safety_plc")
PROCESS_ROLES = ("sensor", "actuator", "plant", "robot", "conveyor")

#: behaviours cycled over the synthetic fault modes (all EPA-mappable)
FLEET_BEHAVIOURS = (
    "omission",
    "value_error",
    "stuck_at_x",
    "compromised",
    "timing_error",
)

_SEVERITIES = ("major", "critical", "minor")
_MAGNITUDES = ("VH", "H", "M")


@dataclass(frozen=True)
class FleetSpec:
    """Shape parameters of one synthetic fleet model.

    ``max_faults`` is carried along as the sweep bound the spec is sized
    for (0 = unbounded); ``requirements`` counts the generated safety
    requirements; ``techniques``/``mitigations``/``vulnerabilities``
    size the companion catalog.
    """

    name: str = "fleet"
    seed: int = 0
    tiers: int = 3
    components_per_tier: int = 4
    connectivity: int = 2
    fault_modes_per_component: int = 2
    max_faults: int = 2
    requirements: int = 2
    techniques: int = 30
    mitigations: int = 10
    vulnerabilities: int = 40

    @property
    def fault_pairs(self) -> int:
        """Declared (component, fault-mode) pairs of the model."""
        return (
            self.tiers
            * self.components_per_tier
            * self.fault_modes_per_component
        )

    def scenario_count(self, max_faults: int = -1) -> int:
        """Exact EPA scenario count of the sweep this spec describes.

        The fault choice is free (a choice rule under a cardinality
        bound), so the space is every fault subset of size at most
        ``max_faults`` (default: the spec's own bound; 0 = unbounded =
        every subset).  Benches size specs by inverting this.
        """
        bound = self.max_faults if max_faults < 0 else max_faults
        pairs = self.fault_pairs
        if bound <= 0 or bound >= pairs:
            return 2 ** pairs
        return sum(math.comb(pairs, k) for k in range(bound + 1))

    def component_ids(self) -> List[str]:
        return [
            _component_id(tier, position)
            for tier in range(self.tiers)
            for position in range(self.components_per_tier)
        ]


def _component_id(tier: int, position: int) -> str:
    return "t%d_c%d" % (tier, position)


def _tier_roles(tier: int, tiers: int) -> Tuple[str, ...]:
    if tier == 0:
        return ENTRY_ROLES
    if tier == tiers - 1:
        return PROCESS_ROLES
    return CONTROL_ROLES


def build_fleet_model(
    spec: FleetSpec, trace: object = None
) -> SystemModel:
    """Deterministically generate the layered model of one spec.

    Components come from the standard CPS library (role cycled within
    each tier), but their ``fault_modes`` are *overridden* with exactly
    ``spec.fault_modes_per_component`` synthetic modes per component —
    the scenario count must be a function of the spec, not of which
    library role a position happened to draw.  Entry-tier components
    are marked ``exposure="public"`` (the attack surface); FLOW edges
    connect each component to ``spec.connectivity`` components of the
    next tier, wrapping around, so the propagation graph is connected
    tier to tier.

    ``trace`` (an event sink) wraps the generation in a
    ``fleet.generate`` span — fleet construction shows up in sweep
    traces next to the solves it feeds.
    """
    if spec.tiers < 1 or spec.components_per_tier < 1:
        raise ValueError("fleet needs at least one tier and one component")
    with Tracer(trace).span(
        "fleet.generate",
        fleet=spec.name,
        seed=spec.seed,
        tiers=spec.tiers,
        components=spec.tiers * spec.components_per_tier,
    ):
        return _build_fleet_model(spec)


def _build_fleet_model(spec: FleetSpec) -> SystemModel:
    library = standard_cps_library()
    model = SystemModel("%s-%d" % (spec.name, spec.seed))
    rng = random.Random(spec.seed)
    component_index = 0
    for tier in range(spec.tiers):
        roles = _tier_roles(tier, spec.tiers)
        offset = rng.randrange(len(roles))
        for position in range(spec.components_per_tier):
            role = roles[(offset + position) % len(roles)]
            identifier = _component_id(tier, position)
            properties = {"exposure": "public"} if tier == 0 else None
            element = library.instantiate(
                model, role, identifier, properties=properties
            )
            element.properties["fault_modes"] = [
                {
                    "name": "fm%d" % mode,
                    "behaviour": FLEET_BEHAVIOURS[
                        (component_index + mode) % len(FLEET_BEHAVIOURS)
                    ],
                    "severity": _SEVERITIES[
                        (component_index + mode) % len(_SEVERITIES)
                    ],
                    "local_effect": "synthetic fault %d" % mode,
                }
                for mode in range(spec.fault_modes_per_component)
            ]
            component_index += 1
    fanout = min(spec.connectivity, spec.components_per_tier)
    for tier in range(spec.tiers - 1):
        for position in range(spec.components_per_tier):
            for step in range(fanout):
                target = (position + step) % spec.components_per_tier
                model.add_relationship(
                    _component_id(tier, position),
                    _component_id(tier + 1, target),
                    RelationshipType.FLOW,
                    check=False,
                )
    return model


def fleet_requirements(spec: FleetSpec, model: SystemModel) -> List[object]:
    """Safety requirements protecting the physical (last) tier.

    One requirement per spec slot, cycled over the last-tier
    components: "component X must not receive a hazardous error kind",
    with magnitudes cycled VH/H/M.  Returns
    :class:`~repro.epa.engine.StaticRequirement` instances (imported
    lazily: :mod:`repro.epa` imports :mod:`repro.security`, so the
    import must not run at module load).
    """
    from ..epa.engine import StaticRequirement

    last_tier = spec.tiers - 1
    requirements = []
    for index in range(max(1, spec.requirements)):
        position = index % spec.components_per_tier
        focus = _component_id(last_tier, position)
        requirements.append(
            StaticRequirement(
                "req%d" % index,
                "err(%s, K), hazardous_kind(K)" % focus,
                focus=focus,
                magnitude=_MAGNITUDES[index % len(_MAGNITUDES)],
            )
        )
    return requirements


def fleet_catalog(spec: FleetSpec) -> SecurityCatalog:
    """The spec-sized synthetic catalog plus an initial-access layer.

    :func:`~repro.security.data.synthetic_catalog` generates only
    ``TA9xxx`` tactics — none of them initial-access — so attack
    scenario spaces over it have no entry points.  Fleets are built to
    be attacked: this grafts the ICS initial-access tactic and a few
    low-difficulty entry techniques targeting the exposed entry-tier
    roles onto the synthetic base, reusing its mitigation ids.
    """
    catalog = synthetic_catalog(
        techniques=spec.techniques,
        mitigations=spec.mitigations,
        vulnerabilities=spec.vulnerabilities,
        seed=spec.seed,
    )
    access_tactic = INITIAL_ACCESS_TACTICS[0]
    catalog.add_tactic(Tactic(access_tactic, "Initial Access"))
    mitigation_ids = sorted(m.identifier for m in catalog.mitigations)
    for index, platform in enumerate(ENTRY_ROLES):
        catalog.add_technique(
            Technique(
                "T9A%02d" % index,
                "Fleet Initial Access via %s" % platform,
                (access_tactic,),
                platforms=(platform,),
                mitigation_ids=(mitigation_ids[index % len(mitigation_ids)],),
                induced_behaviour="compromised",
                difficulty="L",
            )
        )
    return catalog


def fleet_fault_mitigations(spec: FleetSpec) -> Dict[str, Sequence[str]]:
    """Fault-mode name -> mitigation ids, drawn from the fleet catalog.

    The synthetic fault modes are named ``fm0..fmN`` across the whole
    fleet; each maps to one synthetic mitigation (cycled), giving
    mitigation-aware sweeps a deployment lever of the right shape.
    """
    catalog = fleet_catalog(spec)
    mitigation_ids = sorted(m.identifier for m in catalog.mitigations)
    return {
        "fm%d" % mode: (mitigation_ids[mode % len(mitigation_ids)],)
        for mode in range(spec.fault_modes_per_component)
    }


def fleet_engine(spec: FleetSpec, **kwargs: object) -> object:
    """One call from spec to ready :class:`~repro.epa.EpaEngine`.

    Builds the model and requirements and wires the fleet fault
    mitigations; keyword arguments (``workers``, ``trace``,
    ``cube_factor``, ...) pass through to the engine constructor.
    """
    from ..epa.engine import EpaEngine

    model = build_fleet_model(spec, trace=kwargs.get("trace"))
    return EpaEngine(
        model,
        fleet_requirements(spec, model),
        fault_mitigations=fleet_fault_mitigations(spec),
        **kwargs,
    )


def fleet_models(
    spec: FleetSpec, count: int
) -> Iterator[Tuple[FleetSpec, SystemModel]]:
    """``count`` seed-varied (spec, model) pairs of one shape.

    The fleet proper: architecture ``i`` uses ``seed + i``, so the
    pairs are distinct but individually reproducible.
    """
    for index in range(count):
        variant = replace(spec, seed=spec.seed + index)
        yield variant, build_fleet_model(variant)


__all__ = [
    "CONTROL_ROLES",
    "ENTRY_ROLES",
    "FLEET_BEHAVIOURS",
    "FleetSpec",
    "PROCESS_ROLES",
    "build_fleet_model",
    "fleet_catalog",
    "fleet_engine",
    "fleet_fault_mitigations",
    "fleet_models",
    "fleet_requirements",
]

"""Mapping security knowledge onto the system model.

Fig. 1 step 2: "Injecting validated information on the component
security faults and the local impacts of attacks ... extends the system
model with a set of candidate mutations to be evaluated."  A *candidate
mutation* is a potential fault activation on a component — caused
spontaneously (dependability fault mode), by an ATT&CK technique, or by
exploiting a concrete vulnerability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..modeling.model import Element, SystemModel
from .catalogs import SecurityCatalog, Technique, Vulnerability
from .cvss import base_score, to_ora_label

#: tactic ids whose techniques need external exposure to start from
INITIAL_ACCESS_TACTICS = ("TA0108",)


@dataclass(frozen=True)
class CandidateMutation:
    """A potential fault activation on a component.

    ``origin_kind`` is ``fault`` (spontaneous dependability fault mode),
    ``technique`` (ATT&CK) or ``vulnerability`` (CVE).  ``fault`` is the
    fault-mode name the EPA engine will toggle; ``behaviour`` its
    qualitative fault model; ``severity`` an O-RA label.
    """

    component: str
    fault: str
    behaviour: str
    origin_kind: str
    origin: str
    severity: str = "M"

    def __str__(self) -> str:
        return "%s[%s<-%s:%s]" % (
            self.component,
            self.fault,
            self.origin_kind,
            self.origin,
        )


def component_platform(element: Element) -> Optional[str]:
    """The library component-type label used to match technique platforms."""
    platform = element.properties.get("component_type")
    return str(platform) if platform is not None else None


def technique_applicable(
    technique: Technique, element: Element
) -> bool:
    """Does the technique target this component?

    Platform must match the component's library type (empty platform
    list means 'any').  Initial-access techniques additionally require
    the component to be *exposed* (property ``exposure`` set to
    ``public``, ``email`` or ``web``).
    """
    platform = component_platform(element)
    if technique.platforms and (platform is None or platform not in technique.platforms):
        return False
    if any(t in INITIAL_ACCESS_TACTICS for t in technique.tactic_ids):
        exposure = str(element.properties.get("exposure", "internal"))
        if exposure not in ("public", "email", "web"):
            return False
    return True


def applicable_techniques(
    catalog: SecurityCatalog, element: Element
) -> List[Technique]:
    return [
        technique
        for technique in catalog.techniques
        if technique_applicable(technique, element)
    ]


def applicable_vulnerabilities(
    catalog: SecurityCatalog, element: Element
) -> List[Vulnerability]:
    """Version-specific CVE matching on the component's software stack.

    Components list their software as properties ``software`` (a single
    ``product`` name or ``product:version``) or ``software_stack`` (a
    list of such strings).  This is the version-specific refinement level
    of Sec. VI.
    """
    stack: List[str] = []
    single = element.properties.get("software")
    if isinstance(single, str):
        stack.append(single)
    many = element.properties.get("software_stack")
    if isinstance(many, (list, tuple)):
        stack.extend(str(entry) for entry in many)
    matches: List[Vulnerability] = []
    for entry in stack:
        if ":" in entry:
            product, version = entry.split(":", 1)
        else:
            product, version = entry, None
        matches.extend(catalog.vulnerabilities_for_product(product, version))
    return matches


def _difficulty_to_severity(technique: Technique) -> str:
    """Easier techniques are riskier: invert difficulty onto O-RA."""
    return {"L": "VH", "M": "H", "H": "M"}.get(technique.difficulty, "M")


def candidate_mutations(
    model: SystemModel,
    catalog: Optional[SecurityCatalog] = None,
    include_faults: bool = True,
    include_techniques: bool = True,
    include_vulnerabilities: bool = True,
) -> List[CandidateMutation]:
    """The full candidate-mutation set of a model (Fig. 1 step 2)."""
    mutations: List[CandidateMutation] = []
    for element in model.elements:
        if include_faults:
            for fault in element.properties.get("fault_modes", []) or []:
                mutations.append(
                    CandidateMutation(
                        element.identifier,
                        fault["name"],
                        fault["behaviour"],
                        "fault",
                        fault["name"],
                        _severity_to_ora(fault.get("severity", "major")),
                    )
                )
        if catalog is None:
            continue
        if include_techniques:
            for technique in applicable_techniques(catalog, element):
                mutations.append(
                    CandidateMutation(
                        element.identifier,
                        technique.identifier.lower(),
                        technique.induced_behaviour,
                        "technique",
                        technique.identifier,
                        _difficulty_to_severity(technique),
                    )
                )
        if include_vulnerabilities:
            for vulnerability in applicable_vulnerabilities(catalog, element):
                severity = "M"
                if vulnerability.cvss_vector:
                    severity = to_ora_label(base_score(vulnerability.cvss_vector))
                mutations.append(
                    CandidateMutation(
                        element.identifier,
                        vulnerability.identifier.lower().replace("-", "_"),
                        vulnerability.induced_behaviour,
                        "vulnerability",
                        vulnerability.identifier,
                        severity,
                    )
                )
    return mutations


def _severity_to_ora(severity: str) -> str:
    return {
        "negligible": "VL",
        "minor": "L",
        "major": "H",
        "critical": "VH",
    }.get(severity, "M")


def mitigations_for_mutation(
    catalog: SecurityCatalog, mutation: CandidateMutation
) -> List[str]:
    """Mitigation ids that counter a candidate mutation.

    Technique-born mutations map through the ATT&CK technique->mitigation
    join; vulnerability-born ones are countered by patching (M0926-style
    software-update mitigations when present in the catalog).
    """
    if mutation.origin_kind == "technique":
        return [
            entry.identifier
            for entry in catalog.mitigations_for_technique(mutation.origin)
        ]
    if mutation.origin_kind == "vulnerability":
        return [
            entry.identifier
            for entry in catalog.mitigations
            if "update" in entry.name.lower() or "patch" in entry.name.lower()
        ]
    return []

"""The attack-scenario space (Sec. IV-A).

The scenario-identification step answers four questions: which *assets*
could be targeted, by which *methods*, carried out by which *threat
actors*, causing which *loss events*.  Its outcome is "the so-called
scenario space that contains all potential scenarios that can lead to
failures/losses".

:class:`AttackScenarioSpace` enumerates bounded technique chains: an
actor enters at an exposed component with an initial-access technique
and follows the model's propagation edges with follow-up techniques.
Each scenario yields the fault-mode set it would activate — the bridge
into the EPA engine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..modeling.model import SystemModel
from .catalogs import SecurityCatalog, Technique
from .mapping import (
    INITIAL_ACCESS_TACTICS,
    CandidateMutation,
    applicable_techniques,
    technique_applicable,
)


@dataclass(frozen=True)
class ThreatActor:
    """A threat-actor profile (Sec. IV-A step 3).

    ``capability`` is an O-RA label gating which techniques the actor can
    execute: an ``L`` actor only performs ``L``-difficulty techniques,
    ``M`` up to ``M``, and so on.
    """

    name: str
    capability: str = "M"
    motivation: str = "opportunistic"

    _ORDER = ("L", "M", "H")

    def can_execute(self, technique: Technique) -> bool:
        try:
            return self._ORDER.index(technique.difficulty) <= self._ORDER.index(
                self.capability if self.capability in self._ORDER else "H"
            )
        except ValueError:
            return True


@dataclass(frozen=True)
class LossEvent:
    """A potential loss (Sec. IV-A step 4)."""

    name: str
    description: str = ""
    magnitude: str = "M"  # O-RA Loss Magnitude label


@dataclass(frozen=True)
class AttackStep:
    """One technique applied to one component."""

    component: str
    technique: str

    def __str__(self) -> str:
        return "%s@%s" % (self.technique, self.component)


@dataclass(frozen=True)
class AttackScenario:
    """A bounded attack chain by one actor."""

    actor: str
    steps: Tuple[AttackStep, ...]

    @property
    def entry(self) -> AttackStep:
        return self.steps[0]

    @property
    def components(self) -> Tuple[str, ...]:
        return tuple(step.component for step in self.steps)

    def __str__(self) -> str:
        return "%s: %s" % (self.actor, " -> ".join(str(s) for s in self.steps))


class AttackScenarioSpace:
    """Enumerator over the logical attack-scenario space."""

    def __init__(
        self,
        model: SystemModel,
        catalog: SecurityCatalog,
        actors: Sequence[ThreatActor] = (ThreatActor("default", "H"),),
        loss_events: Sequence[LossEvent] = (),
        max_chain: int = 3,
    ):
        self.model = model
        self.catalog = catalog
        self.actors = tuple(actors)
        self.loss_events = tuple(loss_events)
        self.max_chain = max_chain
        self._graph = model.propagation_graph()

    # ------------------------------------------------------------------
    # the four defining aspects
    # ------------------------------------------------------------------
    def assets(self) -> List[str]:
        """Asset definition: components an attacker could target."""
        return sorted(
            element.identifier
            for element in self.model.elements
            if element.properties.get("component_type")
        )

    def methods(self) -> Dict[str, List[str]]:
        """Method identification: applicable techniques per asset."""
        result: Dict[str, List[str]] = {}
        for element in self.model.elements:
            techniques = [
                technique.identifier
                for technique in applicable_techniques(self.catalog, element)
            ]
            if techniques:
                result[element.identifier] = techniques
        return result

    def entry_points(self, actor: ThreatActor) -> List[AttackStep]:
        """Exposed components with an executable initial-access technique."""
        entries: List[AttackStep] = []
        for element in self.model.elements:
            for technique in applicable_techniques(self.catalog, element):
                if not any(
                    t in INITIAL_ACCESS_TACTICS for t in technique.tactic_ids
                ):
                    continue
                if actor.can_execute(technique):
                    entries.append(
                        AttackStep(element.identifier, technique.identifier)
                    )
        return entries

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def scenarios(self) -> Iterator[AttackScenario]:
        """All bounded attack chains, deterministically ordered."""
        for actor in self.actors:
            for entry in self.entry_points(actor):
                yield from self._extend(actor, (entry,), {entry.component})

    def _extend(
        self,
        actor: ThreatActor,
        chain: Tuple[AttackStep, ...],
        visited: Set[str],
    ) -> Iterator[AttackScenario]:
        yield AttackScenario(actor.name, chain)
        if len(chain) >= self.max_chain:
            return
        last = chain[-1].component
        for successor in sorted(self._graph.successors(last)):
            if successor in visited:
                continue
            element = self.model.element(successor)
            for technique in self.catalog.techniques:
                if any(
                    t in INITIAL_ACCESS_TACTICS for t in technique.tactic_ids
                ):
                    continue  # follow-up steps use post-access techniques
                if not technique_applicable(technique, element):
                    continue
                if not actor.can_execute(technique):
                    continue
                step = AttackStep(successor, technique.identifier)
                yield from self._extend(
                    actor, chain + (step,), visited | {successor}
                )

    def size(self) -> int:
        """The exact scenario count, without materializing the walk.

        Mirrors :meth:`_extend` analytically: every chain extension
        picks one unvisited successor and one applicable follow-up
        technique, and the subtree below the extension depends only on
        the successor, the visited set and the remaining depth — never
        on *which* technique was chosen — so each successor contributes
        ``applicable-technique count x subtree count``.  Differential
        tests pin ``size() == sum(1 for _ in scenarios())`` across
        seeded fleet models; on fleet-scale spaces this runs in graph
        time while the iterator runs in scenario time.
        """

        def count_from(
            actor: ThreatActor,
            followups: Dict[str, int],
            last: str,
            visited: Set[str],
            length: int,
        ) -> int:
            total = 1  # the chain as it stands is itself a scenario
            if length >= self.max_chain:
                return total
            for successor in self._graph.successors(last):
                if successor in visited:
                    continue
                branches = followups.get(successor)
                if branches is None:
                    element = self.model.element(successor)
                    branches = sum(
                        1
                        for technique in self.catalog.techniques
                        if not any(
                            t in INITIAL_ACCESS_TACTICS
                            for t in technique.tactic_ids
                        )
                        and technique_applicable(technique, element)
                        and actor.can_execute(technique)
                    )
                    followups[successor] = branches
                if branches:
                    total += branches * count_from(
                        actor,
                        followups,
                        successor,
                        visited | {successor},
                        length + 1,
                    )
            return total

        total = 0
        for actor in self.actors:
            followups: Dict[str, int] = {}
            for entry in self.entry_points(actor):
                total += count_from(
                    actor, followups, entry.component, {entry.component}, 1
                )
        return total

    # ------------------------------------------------------------------
    # EPA bridge
    # ------------------------------------------------------------------
    def mutations_for(self, scenario: AttackScenario) -> List[CandidateMutation]:
        """The fault activations a scenario causes on the model."""
        mutations: List[CandidateMutation] = []
        for step in scenario.steps:
            technique = self.catalog.technique(step.technique)
            mutations.append(
                CandidateMutation(
                    step.component,
                    technique.identifier.lower(),
                    technique.induced_behaviour,
                    "technique",
                    technique.identifier,
                )
            )
        return mutations

    def blocking_mitigations(self, scenario: AttackScenario) -> List[Set[str]]:
        """Per step, the mitigation ids that would block that step.

        A scenario is blocked when at least one of its steps is blocked —
        the structure the mitigation optimizer's covering model uses.
        """
        result: List[Set[str]] = []
        for step in scenario.steps:
            technique = self.catalog.technique(step.technique)
            result.append(set(technique.mitigation_ids))
        return result

"""Temporal reasoning: LTLf and Telingo-style temporal ASP.

The paper validates dynamic safety requirements with Telingo (ASP + LTL).
This package provides the equivalent machinery: an LTLf formula language
with finite-trace semantics, and :class:`TemporalProgram`, which unrolls
`initial`/`dynamic`/`always`/`final` rule parts over a bounded horizon and
compiles LTLf requirements into satisfaction rules.
"""

from .ltl import (
    And,
    Eventually,
    Formula,
    Globally,
    LtlError,
    Next,
    Not,
    Or,
    Prop,
    Release,
    Until,
    WeakNext,
    iff,
    implies,
    parse_ltl,
    weak_until,
)
from .semantics import TraceError, evaluate, holds_initially, violations
from .telingo import (
    Requirement,
    TemporalError,
    TemporalModel,
    TemporalProgram,
)

__all__ = [
    "And",
    "Eventually",
    "Formula",
    "Globally",
    "LtlError",
    "Next",
    "Not",
    "Or",
    "Prop",
    "Release",
    "Requirement",
    "TemporalError",
    "TemporalModel",
    "TemporalProgram",
    "TraceError",
    "Until",
    "WeakNext",
    "evaluate",
    "holds_initially",
    "iff",
    "implies",
    "parse_ltl",
    "violations",
    "weak_until",
]

"""Linear temporal logic over finite traces (LTLf).

The paper's reasoning layer builds on Telingo — ASP extended with linear
temporal logic over finite traces.  This module provides the formula AST
and a parser.  Finite-trace semantics live in
:mod:`repro.temporal.semantics`; compilation into unrolled ASP rules in
:mod:`repro.temporal.telingo`.

Formula syntax (parsed by :func:`parse_ltl`)::

    prop        atomic proposition, ASP-atom syntax: level(high)
    ~f          negation             f & g      conjunction
    f | g       disjunction          f -> g     implication
    f <-> g     equivalence
    X f         next                 WX f       weak next
    F f         eventually           G f        globally
    f U g       until                f R g      release
    f W g       weak until

Operator precedence (loosest to tightest): ``<->``, ``->``, ``|``, ``&``,
unary (``~ X WX F G``), then ``U/R/W`` bind tighter than the boolean
connectives and associate to the right.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..asp.parser import ParseError
from ..asp.parser import parse_term
from ..asp.syntax import Atom
from ..asp.terms import Function, Symbol


class LtlError(Exception):
    """Raised on malformed LTL formulas."""


@dataclass(frozen=True)
class Formula:
    """Base class for LTL formulas."""

    def subformulas(self) -> Iterator["Formula"]:
        """Post-order traversal including self."""
        raise NotImplementedError


@dataclass(frozen=True)
class Prop(Formula):
    """An atomic proposition, carried as a ground ASP atom."""

    atom: Atom

    def subformulas(self) -> Iterator[Formula]:
        yield self

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def subformulas(self) -> Iterator[Formula]:
        yield from self.operand.subformulas()
        yield self

    def __str__(self) -> str:
        return "~%s" % _wrap(self.operand)


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def subformulas(self) -> Iterator[Formula]:
        yield from self.left.subformulas()
        yield from self.right.subformulas()
        yield self

    def __str__(self) -> str:
        return "(%s & %s)" % (self.left, self.right)


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def subformulas(self) -> Iterator[Formula]:
        yield from self.left.subformulas()
        yield from self.right.subformulas()
        yield self

    def __str__(self) -> str:
        return "(%s | %s)" % (self.left, self.right)


@dataclass(frozen=True)
class Next(Formula):
    """Strong next: requires a successor state."""

    operand: Formula

    def subformulas(self) -> Iterator[Formula]:
        yield from self.operand.subformulas()
        yield self

    def __str__(self) -> str:
        return "X %s" % _wrap(self.operand)


@dataclass(frozen=True)
class WeakNext(Formula):
    """Weak next: vacuously true in the final state."""

    operand: Formula

    def subformulas(self) -> Iterator[Formula]:
        yield from self.operand.subformulas()
        yield self

    def __str__(self) -> str:
        return "WX %s" % _wrap(self.operand)


@dataclass(frozen=True)
class Eventually(Formula):
    operand: Formula

    def subformulas(self) -> Iterator[Formula]:
        yield from self.operand.subformulas()
        yield self

    def __str__(self) -> str:
        return "F %s" % _wrap(self.operand)


@dataclass(frozen=True)
class Globally(Formula):
    operand: Formula

    def subformulas(self) -> Iterator[Formula]:
        yield from self.operand.subformulas()
        yield self

    def __str__(self) -> str:
        return "G %s" % _wrap(self.operand)


@dataclass(frozen=True)
class Until(Formula):
    left: Formula
    right: Formula

    def subformulas(self) -> Iterator[Formula]:
        yield from self.left.subformulas()
        yield from self.right.subformulas()
        yield self

    def __str__(self) -> str:
        return "(%s U %s)" % (self.left, self.right)


@dataclass(frozen=True)
class Release(Formula):
    left: Formula
    right: Formula

    def subformulas(self) -> Iterator[Formula]:
        yield from self.left.subformulas()
        yield from self.right.subformulas()
        yield self

    def __str__(self) -> str:
        return "(%s R %s)" % (self.left, self.right)


def _wrap(formula: Formula) -> str:
    if isinstance(formula, (Prop, Not)):
        return str(formula)
    return "(%s)" % formula


def implies(left: Formula, right: Formula) -> Formula:
    """``left -> right`` as ``~left | right``."""
    return Or(Not(left), right)


def iff(left: Formula, right: Formula) -> Formula:
    """``left <-> right``."""
    return And(implies(left, right), implies(right, left))


def weak_until(left: Formula, right: Formula) -> Formula:
    """``left W right`` expanded to ``(left U right) | G left``."""
    return Or(Until(left, right), Globally(left))


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
_LTL_TOKEN = re.compile(
    r"\s*(?:(?P<op><->|->|[~&|()])"
    r"|(?P<word>WX|[XFGURW])(?![A-Za-z0-9_])"
    r"|(?P<prop>[a-z][A-Za-z0-9_]*(?:\([^()]*(?:\([^()]*\))?[^()]*\))?))"
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _LTL_TOKEN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise LtlError("cannot tokenize LTL input at %r" % remainder[:20])
        if match.group("op"):
            tokens.append(("op", match.group("op")))
        elif match.group("word"):
            tokens.append(("word", match.group("word")))
        else:
            tokens.append(("prop", match.group("prop")))
        position = match.end()
    tokens.append(("eof", ""))
    return tokens


class _LtlParser:
    def __init__(self, text: str):
        self._tokens = _tokenize(text)
        self._index = 0

    def _peek(self) -> Tuple[str, str]:
        return self._tokens[self._index]

    def _advance(self) -> Tuple[str, str]:
        token = self._tokens[self._index]
        if token[0] != "eof":
            self._index += 1
        return token

    def _accept(self, kind: str, text: str) -> bool:
        if self._peek() == (kind, text):
            self._advance()
            return True
        return False

    def parse(self) -> Formula:
        formula = self._parse_iff()
        if self._peek()[0] != "eof":
            raise LtlError("trailing input after formula: %r" % (self._peek()[1],))
        return formula

    def _parse_iff(self) -> Formula:
        left = self._parse_implies()
        while self._accept("op", "<->"):
            right = self._parse_implies()
            left = iff(left, right)
        return left

    def _parse_implies(self) -> Formula:
        left = self._parse_or()
        if self._accept("op", "->"):
            right = self._parse_implies()  # right associative
            return implies(left, right)
        return left

    def _parse_or(self) -> Formula:
        left = self._parse_and()
        while self._accept("op", "|"):
            left = Or(left, self._parse_and())
        return left

    def _parse_and(self) -> Formula:
        left = self._parse_binary_temporal()
        while self._accept("op", "&"):
            left = And(left, self._parse_binary_temporal())
        return left

    def _parse_binary_temporal(self) -> Formula:
        left = self._parse_unary()
        kind, text = self._peek()
        if kind == "word" and text in ("U", "R", "W"):
            self._advance()
            right = self._parse_binary_temporal()  # right associative
            if text == "U":
                return Until(left, right)
            if text == "R":
                return Release(left, right)
            return weak_until(left, right)
        return left

    def _parse_unary(self) -> Formula:
        kind, text = self._peek()
        if kind == "op" and text == "~":
            self._advance()
            return Not(self._parse_unary())
        if kind == "word" and text in ("X", "WX", "F", "G"):
            self._advance()
            operand = self._parse_unary()
            return {
                "X": Next,
                "WX": WeakNext,
                "F": Eventually,
                "G": Globally,
            }[text](operand)
        if kind == "op" and text == "(":
            self._advance()
            inner = self._parse_iff()
            if not self._accept("op", ")"):
                raise LtlError("missing closing parenthesis")
            return inner
        if kind == "prop":
            self._advance()
            return Prop(_parse_prop(text))
        raise LtlError("expected a formula, found %r" % (text or "end of input"))


def _parse_prop(text: str) -> Atom:
    try:
        term = parse_term(text)
    except ParseError as error:
        raise LtlError("bad proposition %r: %s" % (text, error)) from None
    if isinstance(term, Symbol):
        return Atom(term.name, ())
    if isinstance(term, Function) and term.name:
        if not term.is_ground():
            raise LtlError("proposition %r must be ground" % text)
        return Atom(term.name, term.arguments)
    raise LtlError("proposition %r is not an atom" % text)


def parse_ltl(text: str) -> Formula:
    """Parse an LTLf formula from text."""
    return _LtlParser(text).parse()

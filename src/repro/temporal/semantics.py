"""Finite-trace (LTLf) semantics.

A *trace* is a non-empty sequence of states; each state is a set of
ground atoms (:class:`repro.asp.syntax.Atom`).  Evaluation follows the
standard LTLf semantics (De Giacomo & Vardi):

* ``X f`` requires a successor state (false in the last state);
* ``WX f`` is true in the last state;
* ``G``/``F``/``U``/``R`` quantify over the remaining finite suffix.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..asp.syntax import Atom
from .ltl import (
    And,
    Eventually,
    Formula,
    Globally,
    Next,
    Not,
    Or,
    Prop,
    Release,
    Until,
    WeakNext,
)

Trace = Sequence[Set[Atom]]


class TraceError(Exception):
    """Raised for empty traces or out-of-range positions."""


def evaluate(formula: Formula, trace: Trace, position: int = 0) -> bool:
    """Evaluate ``formula`` on ``trace`` starting at ``position``."""
    if not trace:
        raise TraceError("LTLf traces must be non-empty")
    if not 0 <= position < len(trace):
        raise TraceError("position %d outside trace of length %d" % (position, len(trace)))
    cache: Dict[Tuple[int, int], bool] = {}
    return _eval(formula, trace, position, cache)


def _eval(
    formula: Formula,
    trace: Trace,
    position: int,
    cache: Dict[Tuple[int, int], bool],
) -> bool:
    key = (id(formula), position)
    cached = cache.get(key)
    if cached is not None:
        return cached
    last = len(trace) - 1
    if isinstance(formula, Prop):
        result = formula.atom in trace[position]
    elif isinstance(formula, Not):
        result = not _eval(formula.operand, trace, position, cache)
    elif isinstance(formula, And):
        result = _eval(formula.left, trace, position, cache) and _eval(
            formula.right, trace, position, cache
        )
    elif isinstance(formula, Or):
        result = _eval(formula.left, trace, position, cache) or _eval(
            formula.right, trace, position, cache
        )
    elif isinstance(formula, Next):
        result = position < last and _eval(
            formula.operand, trace, position + 1, cache
        )
    elif isinstance(formula, WeakNext):
        result = position == last or _eval(
            formula.operand, trace, position + 1, cache
        )
    elif isinstance(formula, Eventually):
        result = any(
            _eval(formula.operand, trace, t, cache)
            for t in range(position, last + 1)
        )
    elif isinstance(formula, Globally):
        result = all(
            _eval(formula.operand, trace, t, cache)
            for t in range(position, last + 1)
        )
    elif isinstance(formula, Until):
        result = False
        for t in range(position, last + 1):
            if _eval(formula.right, trace, t, cache):
                if all(
                    _eval(formula.left, trace, u, cache)
                    for u in range(position, t)
                ):
                    result = True
                    break
    elif isinstance(formula, Release):
        # right must hold up to and including the step where left holds;
        # if left never holds, right must hold to the end of the trace.
        result = True
        for t in range(position, last + 1):
            if not _eval(formula.right, trace, t, cache):
                released = any(
                    _eval(formula.left, trace, u, cache)
                    for u in range(position, t)
                )
                if not released:
                    result = False
                break
    else:
        raise TypeError("unknown formula type %s" % type(formula).__name__)
    cache[key] = result
    return result


def violations(formula: Formula, trace: Trace) -> List[int]:
    """Positions at which the formula does not hold."""
    return [t for t in range(len(trace)) if not evaluate(formula, trace, t)]


def holds_initially(formula: Formula, trace: Trace) -> bool:
    """Shorthand: does the trace satisfy the formula from position 0."""
    return evaluate(formula, trace, 0)

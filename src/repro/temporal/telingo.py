"""Telingo-style temporal ASP programs.

Telingo [Cabalar et al. 2019] extends ASP with linear temporal operators
by splitting a program into ``initial``, ``dynamic``, ``always`` and
``final`` parts and solving over a bounded horizon.  This module
reproduces that workflow on top of :mod:`repro.asp`:

* temporal rules are written in plain ASP; an atom ``p(args)`` refers to
  the current step, and ``prev_p(args)`` to the previous step — exactly
  the convention of the paper's Listing 2
  (``component_state(C,X) :- prev_component_state(C,X), ...``);
* the program is *unrolled*: every temporal atom receives an extra time
  argument and rules are guarded by step facts;
* LTLf requirements (:mod:`repro.temporal.ltl`) are compiled into
  satisfaction rules, so each answer set reports which requirements its
  trace violates — the EPA engine reads these ``__req_violated`` atoms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..asp import Control, parse_program
from ..asp import syntax
from ..asp.solver import Model
from ..asp.syntax import Aggregate, Atom, Choice, Comparison, Literal, Program, Rule
from ..asp.terms import BinaryOperation, Number, Symbol, Term, Variable
from .ltl import (
    And,
    Eventually,
    Formula,
    Globally,
    LtlError,
    Next,
    Not,
    Or,
    Prop,
    Release,
    Until,
    WeakNext,
    parse_ltl,
)

PREV_PREFIX = "prev_"
STEP_PREDICATE = "__step"
SAT_PREDICATE = "__sat"
REQ_SAT = "__req_sat"
REQ_VIOLATED = "__req_violated"

_TIME = Variable("__T")


class TemporalError(Exception):
    """Raised for malformed temporal programs."""


@dataclass(frozen=True)
class Requirement:
    """A named LTLf requirement attached to a temporal program."""

    name: str
    formula: Formula
    enforce: bool = False
    #: when ``enforce`` is set, traces violating the requirement are
    #: excluded from the answer sets instead of merely being flagged.


@dataclass
class TemporalModel:
    """An answer set of an unrolled temporal program, viewed as a trace."""

    model: Model
    horizon: int
    trace: List[Set[Atom]]
    requirement_status: Dict[str, bool]
    #: requirement name -> True when *violated*

    @property
    def violated_requirements(self) -> List[str]:
        return sorted(
            name for name, violated in self.requirement_status.items() if violated
        )

    def state(self, step: int) -> Set[Atom]:
        return self.trace[step]

    def holds(self, atom: Atom, step: int) -> bool:
        return atom in self.trace[step]

    def __str__(self) -> str:
        parts = []
        for step, state in enumerate(self.trace):
            atoms = " ".join(sorted(str(a) for a in state))
            parts.append("%d: %s" % (step, atoms))
        return "\n".join(parts)


class TemporalProgram:
    """Accumulate temporal rule parts, then unroll and solve."""

    def __init__(self) -> None:
        self._initial: List[str] = []
        self._dynamic: List[str] = []
        self._always: List[str] = []
        self._final: List[str] = []
        self._static: List[str] = []
        self._static_predicates: Set[str] = set()
        self._requirements: List[Requirement] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_text(cls, text: str) -> "TemporalProgram":
        """Parse a Telingo-style sectioned program.

        Sections are introduced by ``#program initial.``,
        ``#program dynamic.``, ``#program always.``, ``#program final.``
        or ``#program static.`` lines; text before the first marker is
        static.  This mirrors Telingo's input convention so a temporal
        model can live in one file.
        """
        program = cls()
        adders = {
            "initial": program.add_initial,
            "dynamic": program.add_dynamic,
            "always": program.add_always,
            "final": program.add_final,
            "static": program.add_static,
        }
        current = "static"
        buffer: List[str] = []

        def flush() -> None:
            chunk = "\n".join(buffer).strip()
            if chunk:
                adders[current](chunk)
            buffer.clear()

        for line in text.splitlines():
            stripped = line.strip()
            if stripped.startswith("#program"):
                name = (
                    stripped[len("#program"):].strip().rstrip(".").strip()
                )
                if name not in adders:
                    raise TemporalError(
                        "unknown #program section %r (expected one of %s)"
                        % (name, ", ".join(sorted(adders)))
                    )
                flush()
                current = name
                continue
            buffer.append(line)
        flush()
        return program

    def add_initial(self, text: str) -> None:
        """Rules holding only at step 0."""
        self._initial.append(text)

    def add_dynamic(self, text: str) -> None:
        """Rules holding at steps >= 1 (may reference ``prev_*`` atoms)."""
        self._dynamic.append(text)

    def add_always(self, text: str) -> None:
        """Rules holding at every step."""
        self._always.append(text)

    def add_final(self, text: str) -> None:
        """Rules holding only at the last step."""
        self._final.append(text)

    def add_static(self, text: str) -> None:
        """Non-temporal rules/facts (topology, libraries, costs...)."""
        self._static.append(text)
        for rule in parse_program(text).rules:
            if isinstance(rule.head, Atom):
                self._static_predicates.add(rule.head.predicate)
            elif isinstance(rule.head, Choice):
                for element in rule.head.elements:
                    self._static_predicates.add(element.atom.predicate)

    def declare_static(self, *predicates: str) -> None:
        """Mark predicates as time-independent in temporal parts."""
        self._static_predicates.update(predicates)

    def add_requirement(
        self,
        name: str,
        formula: Union[str, Formula],
        enforce: bool = False,
    ) -> None:
        """Attach a named LTLf requirement (textual or AST form)."""
        if isinstance(formula, str):
            formula = parse_ltl(formula)
        if any(req.name == name for req in self._requirements):
            raise TemporalError("duplicate requirement name %r" % name)
        self._requirements.append(Requirement(name, formula, enforce))

    @property
    def requirements(self) -> Tuple[Requirement, ...]:
        return tuple(self._requirements)

    # ------------------------------------------------------------------
    # unrolling
    # ------------------------------------------------------------------
    def unroll(self, horizon: int) -> Program:
        """Produce the plain ASP program for the given horizon."""
        if horizon < 0:
            raise TemporalError("horizon must be non-negative")
        unrolled = Program()
        for step in range(horizon + 1):
            unrolled.rules.append(
                Rule(Atom(STEP_PREDICATE, (Number(step),)), ())
            )
        for text in self._static:
            unrolled.extend(parse_program(text))
        temporal_predicates = self._collect_temporal_predicates()
        for text in self._initial:
            for rule in parse_program(text).rules:
                unrolled.rules.append(
                    self._transform_rule(rule, temporal_predicates, fixed=0)
                )
        for text in self._final:
            for rule in parse_program(text).rules:
                unrolled.rules.append(
                    self._transform_rule(rule, temporal_predicates, fixed=horizon)
                )
        for text in self._always:
            for rule in parse_program(text).rules:
                unrolled.rules.append(
                    self._transform_rule(rule, temporal_predicates, fixed=None)
                )
        for text in self._dynamic:
            for rule in parse_program(text).rules:
                unrolled.rules.append(
                    self._transform_rule(
                        rule, temporal_predicates, fixed=None, minimum=1
                    )
                )
        for index, requirement in enumerate(self._requirements):
            self._compile_requirement(
                unrolled, requirement, index, horizon, temporal_predicates
            )
        return unrolled

    def _collect_temporal_predicates(self) -> Set[str]:
        predicates: Set[str] = set()
        for text in self._initial + self._dynamic + self._always + self._final:
            program = parse_program(text)
            for rule in program.rules:
                for atom in _rule_atoms(rule):
                    name = atom.predicate
                    if name.startswith(PREV_PREFIX):
                        name = name[len(PREV_PREFIX):]
                    if name not in self._static_predicates:
                        predicates.add(name)
        return predicates

    def _time_term(self, fixed: Optional[int]) -> Term:
        return Number(fixed) if fixed is not None else _TIME

    def _transform_atom(
        self, atom: Atom, temporal: Set[str], time: Term, offset: int = 0
    ) -> Atom:
        predicate = atom.predicate
        if predicate.startswith(PREV_PREFIX):
            base = predicate[len(PREV_PREFIX):]
            if base in self._static_predicates:
                raise TemporalError(
                    "prev_ used on static predicate %r" % base
                )
            return self._transform_atom(
                Atom(base, atom.arguments), temporal, time, offset - 1
            )
        if predicate not in temporal:
            return atom
        if offset == 0:
            stamped: Term = time
        elif isinstance(time, Number):
            stamped = Number(time.value + offset)
        else:
            stamped = BinaryOperation("+", time, Number(offset))
        return Atom(predicate, atom.arguments + (stamped,))

    def _transform_literal(
        self, literal: Literal, temporal: Set[str], time: Term
    ) -> Literal:
        return Literal(
            self._transform_atom(literal.atom, temporal, time), literal.negated
        )

    def _transform_rule(
        self,
        rule: Rule,
        temporal: Set[str],
        fixed: Optional[int],
        minimum: int = 0,
    ) -> Rule:
        time = self._time_term(fixed)
        head = rule.head
        if isinstance(head, Atom):
            head = self._transform_atom(head, temporal, time)
        elif isinstance(head, Choice):
            head = Choice(
                tuple(
                    syntax.ChoiceElement(
                        self._transform_atom(element.atom, temporal, time),
                        tuple(
                            self._transform_literal(l, temporal, time)
                            for l in element.condition
                        ),
                    )
                    for element in head.elements
                ),
                head.lower,
                head.upper,
            )
        body: List[object] = []
        for element in rule.body:
            if isinstance(element, Literal):
                body.append(self._transform_literal(element, temporal, time))
            elif isinstance(element, Comparison):
                body.append(element)
            elif isinstance(element, Aggregate):
                body.append(
                    Aggregate(
                        element.function,
                        tuple(
                            syntax.AggregateElement(
                                e.terms,
                                tuple(
                                    self._transform_literal(l, temporal, time)
                                    for l in e.condition
                                ),
                            )
                            for e in element.elements
                        ),
                        element.lower,
                        element.upper,
                        element.negated,
                    )
                )
            else:
                raise TemporalError("unsupported body element %r" % (element,))
        if fixed is None:
            body.append(Literal(Atom(STEP_PREDICATE, (time,)), False))
            if minimum:
                body.append(Comparison(">=", time, Number(minimum)))
        return Rule(head, tuple(body))

    # ------------------------------------------------------------------
    # LTLf compilation
    # ------------------------------------------------------------------
    def _compile_requirement(
        self,
        program: Program,
        requirement: Requirement,
        req_index: int,
        horizon: int,
        temporal: Set[str],
    ) -> None:
        """Emit satisfaction rules so ``__req_violated(name)`` is derived
        exactly when the trace falsifies the requirement at step 0."""
        name_term = Symbol(_safe_name(requirement.name))
        indexed: Dict[Formula, int] = {}
        for subformula in requirement.formula.subformulas():
            if subformula not in indexed:
                indexed[subformula] = len(indexed)

        def sat(formula: Formula, time: Term) -> Atom:
            return Atom(SAT_PREDICATE, (name_term, Number(indexed[formula]), time))

        step_literal = Literal(Atom(STEP_PREDICATE, (_TIME,)), False)
        next_time = BinaryOperation("+", _TIME, Number(1))
        rules: List[Rule] = []
        for formula in indexed:
            head = sat(formula, _TIME)
            if isinstance(formula, Prop):
                atom = formula.atom
                if atom.predicate in temporal:
                    body: Tuple[object, ...] = (
                        Literal(Atom(atom.predicate, atom.arguments + (_TIME,))),
                        step_literal,
                    )
                else:
                    body = (Literal(atom), step_literal)
                rules.append(Rule(head, body))
            elif isinstance(formula, Not):
                rules.append(
                    Rule(
                        head,
                        (step_literal, Literal(sat(formula.operand, _TIME), True)),
                    )
                )
            elif isinstance(formula, And):
                rules.append(
                    Rule(
                        head,
                        (
                            Literal(sat(formula.left, _TIME)),
                            Literal(sat(formula.right, _TIME)),
                        ),
                    )
                )
            elif isinstance(formula, Or):
                rules.append(Rule(head, (Literal(sat(formula.left, _TIME)),)))
                rules.append(Rule(head, (Literal(sat(formula.right, _TIME)),)))
            elif isinstance(formula, Next):
                rules.append(
                    Rule(
                        head,
                        (step_literal, Literal(sat(formula.operand, next_time))),
                    )
                )
            elif isinstance(formula, WeakNext):
                rules.append(
                    Rule(
                        head,
                        (step_literal, Literal(sat(formula.operand, next_time))),
                    )
                )
                rules.append(Rule(sat(formula, Number(horizon)), ()))
            elif isinstance(formula, Eventually):
                rules.append(Rule(head, (Literal(sat(formula.operand, _TIME)),)))
                rules.append(
                    Rule(head, (step_literal, Literal(sat(formula, next_time))))
                )
            elif isinstance(formula, Globally):
                rules.append(
                    Rule(
                        sat(formula, Number(horizon)),
                        (Literal(sat(formula.operand, Number(horizon))),),
                    )
                )
                rules.append(
                    Rule(
                        head,
                        (
                            Literal(sat(formula.operand, _TIME)),
                            Literal(sat(formula, next_time)),
                        ),
                    )
                )
            elif isinstance(formula, Until):
                rules.append(Rule(head, (Literal(sat(formula.right, _TIME)),)))
                rules.append(
                    Rule(
                        head,
                        (
                            Literal(sat(formula.left, _TIME)),
                            Literal(sat(formula, next_time)),
                        ),
                    )
                )
            elif isinstance(formula, Release):
                rules.append(
                    Rule(
                        sat(formula, Number(horizon)),
                        (Literal(sat(formula.right, Number(horizon))),),
                    )
                )
                rules.append(
                    Rule(
                        head,
                        (
                            Literal(sat(formula.right, _TIME)),
                            Literal(sat(formula.left, _TIME)),
                        ),
                    )
                )
                rules.append(
                    Rule(
                        head,
                        (
                            Literal(sat(formula.right, _TIME)),
                            Literal(sat(formula, next_time)),
                        ),
                    )
                )
            else:
                raise TemporalError(
                    "cannot compile formula type %s" % type(formula).__name__
                )
        root = requirement.formula
        rules.append(
            Rule(
                Atom(REQ_SAT, (name_term,)),
                (Literal(sat(root, Number(0))),),
            )
        )
        rules.append(
            Rule(
                Atom(REQ_VIOLATED, (name_term,)),
                (Literal(Atom(REQ_SAT, (name_term,)), True),),
            )
        )
        if requirement.enforce:
            rules.append(
                Rule(None, (Literal(Atom(REQ_VIOLATED, (name_term,))),))
            )
        program.rules.extend(rules)

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(
        self,
        horizon: int,
        limit: Optional[int] = None,
        extra: str = "",
    ) -> List[TemporalModel]:
        """Unroll, solve, and lift answer sets back into traces."""
        control = self.control(horizon, extra)
        temporal = self._collect_temporal_predicates()
        models = control.solve(limit=limit)
        return [self._lift(model, horizon, temporal) for model in models]

    def control(self, horizon: int, extra: str = "") -> Control:
        """The unrolled program wrapped in a :class:`Control` (for custom
        queries, optimization or assumptions)."""
        control = Control()
        control._program.extend(self.unroll(horizon))  # internal splice
        if extra:
            control.add(extra)
        return control

    def lift(self, model: Model, horizon: int) -> TemporalModel:
        """Public wrapper to lift a model from :meth:`control` solving."""
        return self._lift(model, horizon, self._collect_temporal_predicates())

    def _lift(
        self, model: Model, horizon: int, temporal: Set[str]
    ) -> TemporalModel:
        trace: List[Set[Atom]] = [set() for _ in range(horizon + 1)]
        static_atoms: Set[Atom] = set()
        for atom in model.atoms:
            if atom.predicate.startswith("__"):
                continue
            if atom.predicate in temporal and atom.arguments:
                last = atom.arguments[-1]
                if isinstance(last, Number) and 0 <= last.value <= horizon:
                    trace[last.value].add(Atom(atom.predicate, atom.arguments[:-1]))
                    continue
            static_atoms.add(atom)
        for state in trace:
            state.update(static_atoms)
        status: Dict[str, bool] = {}
        for requirement in self._requirements:
            violated_atom = Atom(
                REQ_VIOLATED, (Symbol(_safe_name(requirement.name)),)
            )
            status[requirement.name] = model.contains(violated_atom)
        return TemporalModel(model, horizon, trace, status)


def _rule_atoms(rule: Rule) -> Iterable[Atom]:
    if isinstance(rule.head, Atom):
        yield rule.head
    elif isinstance(rule.head, Choice):
        for element in rule.head.elements:
            yield element.atom
            for literal in element.condition:
                yield literal.atom
    for element in rule.body:
        if isinstance(element, Literal):
            yield element.atom
        elif isinstance(element, Aggregate):
            for aggregate_element in element.elements:
                for literal in aggregate_element.condition:
                    yield literal.atom


def _safe_name(name: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not cleaned or not cleaned[0].islower():
        cleaned = "r_" + cleaned
    return cleaned

"""Classic ASP problems as integration stress tests of the engine.

Graph coloring, independent sets, Hamiltonian cycles, N-queens and a
knapsack-style optimization: canonical encodings whose solution counts
are known in closed form (or computable by brute force), so every one
doubles as a correctness oracle for grounding + stable-model search.
"""

import itertools

import pytest

from repro.asp import Control, atom


class TestGraphColoring:
    def _coloring_count(self, edges, nodes, colors):
        text = ["node(%s)." % n for n in nodes]
        text += ["edge(%s, %s)." % e for e in edges]
        text.append("color(1..%d)." % colors)
        text.append("1 { assigned(N, C) : color(C) } 1 :- node(N).")
        text.append(":- edge(A, B), assigned(A, C), assigned(B, C).")
        return len(Control("\n".join(text)).solve())

    def test_triangle_3_colors(self):
        # chromatic polynomial of K3 at k=3: 3*2*1 = 6
        count = self._coloring_count(
            [("a", "b"), ("b", "c"), ("a", "c")], ["a", "b", "c"], 3
        )
        assert count == 6

    def test_triangle_2_colors_unsat(self):
        count = self._coloring_count(
            [("a", "b"), ("b", "c"), ("a", "c")], ["a", "b", "c"], 2
        )
        assert count == 0

    def test_path_graph(self):
        # P3 with k colors: k*(k-1)^2 -> 3*4 = 12 at k=3
        count = self._coloring_count(
            [("a", "b"), ("b", "c")], ["a", "b", "c"], 3
        )
        assert count == 12

    def test_cycle_c4(self):
        # chromatic polynomial of C4 at k=3: (k-1)^4 + (k-1) = 16+2 = 18
        count = self._coloring_count(
            [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")],
            ["a", "b", "c", "d"],
            3,
        )
        assert count == 18


class TestIndependentSet:
    def test_counts_match_bruteforce(self):
        edges = [(1, 2), (2, 3), (3, 4), (4, 1), (1, 3)]
        nodes = [1, 2, 3, 4]
        text = ["node(%d)." % n for n in nodes]
        text += ["edge(%d, %d)." % e for e in edges]
        text.append("{ in(N) : node(N) }.")
        text.append(":- edge(A, B), in(A), in(B).")
        models = Control("\n".join(text)).solve()
        expected = 0
        for subset in itertools.chain.from_iterable(
            itertools.combinations(nodes, r) for r in range(len(nodes) + 1)
        ):
            chosen = set(subset)
            if not any(a in chosen and b in chosen for a, b in edges):
                expected += 1
        assert len(models) == expected

    def test_maximum_independent_set(self):
        edges = [(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)]  # C5: alpha = 2
        text = ["node(%d)." % n for n in range(1, 6)]
        text += ["edge(%d, %d)." % e for e in edges]
        text.append("{ in(N) : node(N) }.")
        text.append(":- edge(A, B), in(A), in(B).")
        text.append("#maximize { 1,N : in(N) }.")
        best = Control("\n".join(text)).optimize()
        size = sum(1 for a in best[0].atoms if a.predicate == "in")
        assert size == 2


class TestHamiltonianCycle:
    def _program(self, edges, n):
        text = ["node(1..%d)." % n]
        text += ["edge(%d, %d)." % e for e in edges]
        text.append("1 { go(A, B) : edge(A, B) } 1 :- node(A).")
        text.append("1 { go(A, B) : edge(A, B) } 1 :- node(B).")
        text.append("reach(1).")
        text.append("reach(B) :- reach(A), go(A, B).")
        text.append(":- node(N), not reach(N).")
        return "\n".join(text)

    def test_k4_has_cycles(self):
        edges = [
            (a, b) for a in range(1, 5) for b in range(1, 5) if a != b
        ]
        models = Control(self._program(edges, 4)).solve()
        # directed Hamiltonian cycles in K4: (4-1)! = 6
        assert len(models) == 6

    def test_path_graph_has_none(self):
        edges = [(1, 2), (2, 3), (2, 1), (3, 2)]
        models = Control(self._program(edges, 3)).solve()
        assert models == []


class TestNQueens:
    def _queens_count(self, n):
        text = [
            "row(1..%d)." % n,
            "1 { queen(R, C) : row(C) } 1 :- row(R).",
            ":- queen(R1, C), queen(R2, C), R1 < R2.",
            ":- queen(R1, C1), queen(R2, C2), R1 < R2, R2 - R1 = C2 - C1.",
            ":- queen(R1, C1), queen(R2, C2), R1 < R2, R2 - R1 = C1 - C2.",
        ]
        return len(Control("\n".join(text)).solve())

    def test_known_counts(self):
        assert self._queens_count(4) == 2
        assert self._queens_count(5) == 10

    def test_three_queens_unsat(self):
        assert self._queens_count(3) == 0


class TestKnapsack:
    def test_optimal_value(self):
        # items (value, weight): brute-force optimum under capacity 10
        items = {"a": (10, 5), "b": (6, 4), "c": (7, 6), "d": (3, 1)}
        text = ["item(%s). value(%s, %d). weight(%s, %d)." % (k, k, v, k, w)
                for k, (v, w) in items.items()]
        text.append("{ take(I) : item(I) }.")
        text.append(":- #sum { W,I : take(I), weight(I, W) } > 10.")
        text.append("#maximize { V,I : take(I), value(I, V) }.")
        best = Control("\n".join(text)).optimize()
        chosen = {
            str(a.arguments[0])
            for a in best[0].atoms
            if a.predicate == "take"
        }
        best_value = sum(items[i][0] for i in chosen)
        # brute force
        expected = 0
        for r in range(len(items) + 1):
            for subset in itertools.combinations(items, r):
                weight = sum(items[i][1] for i in subset)
                if weight <= 10:
                    expected = max(
                        expected, sum(items[i][0] for i in subset)
                    )
        assert best_value == expected == 19  # a + b + d (weight 10)

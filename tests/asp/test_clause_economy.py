"""Tests for the learnt-clause economy: LBD-based reduce-DB, conflict
minimization, and glue-clause sharing.

The economy's whole contract is "same answers, fewer clauses": deleting
high-LBD learnts, shrinking conflict clauses and importing a peer's glue
may only ever change how fast the search runs, never what it returns.
These tests pin that contract — enumeration stays complete and
byte-identical with the economy on or off, blocking clauses survive
every reduce pass, imported clauses never flip a verdict — plus the
knob validation and the new statistics counters.
"""

import pytest

from repro.asp import Control
from repro.asp.sat import (
    DEFAULT_LBD_SHARE_LIMIT,
    DEFAULT_REDUCE_BASE,
    SatError,
    Solver,
    resolve_lbd_share_limit,
    resolve_reduce_base,
)
from repro.asp.solver import StableModelSolver
from repro.observability import finalize_solver_stats, format_statistics

#: ASP program with enough conflict structure to learn clauses
PROGRAM = """
{ p(1..7) } 4.
q :- p(1), p(2).
r :- p(3), p(4).
:- q, r.
:- p(5), p(6), p(7).
"""

#: heuristics that force the economy to run hard: restart after every
#: conflict, reduce the learnt DB as soon as it holds a single clause
AGGRESSIVE = {"reduce_base": 1, "restart_base": 1}

#: heuristics that switch the economy off entirely
ECONOMY_OFF = {"reduce_base": None, "minimize_learnts": False}


def pigeonhole(solver, pigeons, holes):
    """Encode pigeons-into-holes; UNSAT when pigeons > holes."""
    grid = [
        [solver.new_var() for _ in range(holes)] for _ in range(pigeons)
    ]
    for p in range(pigeons):
        solver.add_clause(grid[p])
        for h in range(holes):
            for q in range(p + 1, pigeons):
                solver.add_clause([-grid[p][h], -grid[q][h]])
    return grid


class TestKnobValidation:
    def test_reduce_base_zero_rejected(self):
        with pytest.raises(SatError, match="reduce_base must be >= 1"):
            Solver(reduce_base=0)

    def test_reduce_base_negative_rejected(self):
        with pytest.raises(SatError, match="reduce_base must be >= 1"):
            Solver(reduce_base=-5)

    def test_reduce_base_none_disables(self):
        assert Solver(reduce_base=None)._reduce_base is None

    def test_lbd_share_limit_negative_rejected(self):
        with pytest.raises(SatError, match="lbd_share_limit must be >= 0"):
            Solver(lbd_share_limit=-1)

    def test_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_REDUCE_BASE", raising=False)
        monkeypatch.delenv("REPRO_LBD_SHARE_LIMIT", raising=False)
        assert resolve_reduce_base() == DEFAULT_REDUCE_BASE
        assert resolve_lbd_share_limit() == DEFAULT_LBD_SHARE_LIMIT

    def test_env_zero_disables_reduce(self, monkeypatch):
        monkeypatch.setenv("REPRO_REDUCE_BASE", "0")
        assert resolve_reduce_base() is None

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_REDUCE_BASE", "123")
        monkeypatch.setenv("REPRO_LBD_SHARE_LIMIT", "5")
        assert resolve_reduce_base() == 123
        assert resolve_lbd_share_limit() == 5


class TestReduceDb:
    def test_reduce_actually_deletes(self):
        solver = Solver(reduce_base=1, restart_base=1)
        pigeonhole(solver, 5, 4)
        assert solver.solve() is None
        stats = solver.statistics
        assert stats["learnt_deleted"] > 0
        assert stats["learnt"] > 0

    def test_verdicts_unchanged_by_economy(self):
        for pigeons, holes, expect_sat in ((4, 4, True), (5, 4, False)):
            on = Solver(**AGGRESSIVE)
            off = Solver(**ECONOMY_OFF)
            pigeonhole(on, pigeons, holes)
            pigeonhole(off, pigeons, holes)
            assert (on.solve() is not None) is expect_sat
            assert (off.solve() is not None) is expect_sat

    def test_blocking_clauses_survive_every_reduce(self):
        """Enumeration via blocking clauses stays complete under the
        most aggressive reduce schedule: were a blocking clause ever
        deleted, an already-seen model would reappear (a duplicate) —
        so equality of the duplicate-free model lists proves blocking
        clauses survive every pass."""

        def enumerate_all(heuristics):
            solver = StableModelSolver(
                Control(PROGRAM).ground(), heuristics=heuristics
            )
            return [frozenset(m.atoms) for m in solver.models()]

        reference = enumerate_all(ECONOMY_OFF)
        aggressive = enumerate_all(AGGRESSIVE)
        assert len(aggressive) == len(set(aggressive))  # no duplicates
        assert set(aggressive) == set(reference)
        # identical knobs replay byte-identically, deletes included
        assert enumerate_all(AGGRESSIVE) == aggressive

    def test_aggressive_enumeration_really_reduced(self):
        solver = StableModelSolver(
            Control(PROGRAM).ground(), heuristics=AGGRESSIVE
        )
        models = list(solver.models())
        assert models
        # proves the blocking-clause test above exercised reduce passes
        assert solver.statistics["solvers"]["restarts"] > 0


class TestConflictMinimization:
    def test_minimization_preserves_verdicts(self):
        on = Solver(minimize_learnts=True)
        off = Solver(minimize_learnts=False)
        pigeonhole(on, 5, 4)
        pigeonhole(off, 5, 4)
        assert on.solve() is None
        assert off.solve() is None

    def test_minimization_never_grows_lbd_sum(self):
        # minimized clauses span at most the original decision levels
        on = Solver(minimize_learnts=True)
        off = Solver(minimize_learnts=False)
        pigeonhole(on, 5, 4)
        pigeonhole(off, 5, 4)
        on.solve()
        off.solve()
        assert on.statistics["learnt"] == off.statistics["learnt"]
        assert on.statistics["lbd_sum"] <= off.statistics["lbd_sum"]


class TestClauseSharing:
    def test_export_import_same_verdict(self):
        """Glue exported by one solver imports cleanly into a twin with
        the same variable numbering, preserving the verdict."""
        exported = []
        source = Solver(restart_base=1, lbd_share_limit=1000)
        source.set_sharing(export=lambda clause, lbd: exported.append(clause))
        pigeonhole(source, 5, 4)
        assert source.solve() is None
        assert exported
        assert source.statistics["shared_exported"] == len(exported)

        twin = Solver()
        pigeonhole(twin, 5, 4)
        for clause in exported:
            twin.import_clause(clause)
        assert twin.statistics["shared_imported"] == len(exported)
        assert twin.solve() is None

        sat_twin = Solver()
        grid = pigeonhole(sat_twin, 4, 4)
        sat_source = Solver(restart_base=1, lbd_share_limit=1000)
        sat_exported = []
        sat_source.set_sharing(
            export=lambda clause, lbd: sat_exported.append(clause)
        )
        pigeonhole(sat_source, 4, 4)
        assert sat_source.solve() is not None
        for clause in sat_exported:
            sat_twin.import_clause(clause)
        model = sat_twin.solve()
        assert model is not None
        for p in range(4):
            assert any(model[grid[p][h]] for h in range(4))

    def test_import_poll_drained_at_restarts(self):
        source = Solver(restart_base=1, lbd_share_limit=1000)
        exported = []
        source.set_sharing(export=lambda clause, lbd: exported.append(clause))
        pigeonhole(source, 5, 4)
        source.solve()

        inbox = [list(exported)]
        sink = Solver(restart_base=1)
        sink.set_sharing(
            import_poll=lambda: [
                (clause, None) for clause in (inbox.pop() if inbox else [])
            ]
        )
        pigeonhole(sink, 5, 4)
        assert sink.solve() is None
        assert sink.statistics["shared_imported"] == len(exported)

    def test_share_limit_zero_exports_only_empty_lbd(self):
        source = Solver(restart_base=1, lbd_share_limit=0)
        exported = []
        source.set_sharing(export=lambda clause, lbd: exported.append(lbd))
        pigeonhole(source, 5, 4)
        source.solve()
        assert all(lbd == 0 for lbd in exported)

    def test_solver_level_import_clauses(self):
        solver = StableModelSolver(Control(PROGRAM).ground())
        baseline = {frozenset(m.atoms) for m in solver.models()}

        exporter = StableModelSolver(
            Control(PROGRAM).ground(),
            heuristics={"restart_base": 1, "lbd_share_limit": 1000},
        )
        shared = []
        exporter.set_clause_sharing(
            export=lambda clause, lbd: shared.append((clause, lbd))
        )
        list(exporter.models())

        importer = StableModelSolver(Control(PROGRAM).ground())
        importer.import_clauses(shared)
        assert {frozenset(m.atoms) for m in importer.models()} == baseline


class TestEconomyStatistics:
    def test_solver_counters_present(self):
        solver = Solver(**AGGRESSIVE)
        pigeonhole(solver, 5, 4)
        solver.solve()
        stats = solver.statistics
        for key in (
            "lbd_sum",
            "learnt_deleted",
            "shared_exported",
            "shared_imported",
        ):
            assert key in stats
        assert stats["lbd_sum"] > 0

    def test_finalize_solver_stats(self):
        solvers = {"learnt": 4, "lbd_sum": 10}
        assert finalize_solver_stats(solvers) == 2.5
        assert solvers["lbd_avg"] == 2.5
        empty = {"learnt": 0, "lbd_sum": 0}
        assert finalize_solver_stats(empty) == 0.0

    def test_format_statistics_renders_economy_lines(self):
        text = format_statistics(
            {
                "solving": {
                    "solvers": {
                        "choices": 10,
                        "conflicts": 5,
                        "learnt": 4,
                        "lbd_sum": 10,
                        "learnt_deleted": 2,
                        "shared_exported": 3,
                        "shared_imported": 1,
                    }
                }
            }
        )
        assert "LBD" in text
        assert "2.50 avg (deleted: 2)" in text
        assert "3 exported, 1 imported" in text

    def test_control_stats_carry_lbd_average(self):
        control = Control(PROGRAM)
        control.solve()
        solvers = control.statistics.get_path("solving.solvers")
        assert solvers is not None
        assert "lbd_sum" in solvers
        assert "lbd_avg" in solvers

    def test_multishot_deltas_stay_exact(self):
        control = Control(PROGRAM, heuristics=AGGRESSIVE)
        control.solve()
        first = control.statistics.get_path("solving.solvers.lbd_sum")
        control.solve()
        second = control.statistics.get_path("solving.solvers.lbd_sum")
        # summable counter: never shrinks across multishot calls
        assert second >= first >= 0

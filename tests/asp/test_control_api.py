"""Tests for the Control facade and Python-value conversion."""

import pytest

from repro.asp import Control, atom, to_term
from repro.asp.ground import GroundProgram
from repro.asp.naive import is_model, is_stable_model, stable_models
from repro.asp.terms import Function, Number, String, Symbol


class TestToTerm:
    def test_int(self):
        assert to_term(7) == Number(7)

    def test_negative_int(self):
        assert to_term(-2) == Number(-2)

    def test_bool_becomes_symbol(self):
        assert to_term(True) == Symbol("true")
        assert to_term(False) == Symbol("false")

    def test_identifier_string_becomes_symbol(self):
        assert to_term("water_tank") == Symbol("water_tank")

    def test_non_identifier_string_becomes_string(self):
        assert to_term("Water Tank") == String("Water Tank")
        assert to_term("CVE-2023-1") == String("CVE-2023-1")
        assert to_term("") == String("")

    def test_tuple_becomes_tuple_term(self):
        assert to_term((1, "a")) == Function("", (Number(1), Symbol("a")))

    def test_term_passes_through(self):
        term = Symbol("x")
        assert to_term(term) is term

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            to_term(3.14)


class TestAddFacts:
    def test_add_fact_varargs(self):
        control = Control()
        control.add_fact("level", "tank", 3)
        model = control.first_model()
        assert model.contains(atom("level", "tank", 3))

    def test_add_facts_bulk(self):
        control = Control()
        control.add_facts(
            [("edge", (1, 2)), ("edge", (2, 3)), ("node", ("a",))]
        )
        model = control.first_model()
        assert model.contains(atom("edge", 1, 2))
        assert model.contains(atom("node", "a"))

    def test_facts_join_with_rules(self):
        control = Control("reach(X) :- edge(1, X).")
        control.add_fact("edge", 1, 2)
        model = control.first_model()
        assert model.contains(atom("reach", 2))

    def test_add_invalidates_grounding_cache(self):
        control = Control("a.")
        first = control.ground()
        control.add_fact("b")
        second = control.ground()
        assert second is not first
        assert len(second.possible_atoms) == 2


class TestControlQueries:
    def test_is_satisfiable(self):
        assert Control("{ a }.").is_satisfiable()
        assert not Control("a. :- a.").is_satisfiable()

    def test_first_model_none_on_unsat(self):
        assert Control(":- not a.").first_model() is None

    def test_ground_statistics(self):
        stats = Control("p(1..4). q(X) :- p(X).").ground().statistics()
        assert stats == {"rules": 8, "weak_constraints": 0, "atoms": 8}

    def test_ground_program_renders(self):
        text = str(Control("p(1). q :- p(1), not r. :~ q. [1@1]").ground())
        assert "p(1)." in text
        assert "not r" in text or "q :- p(1)." in text
        assert ":~" in text


class TestNaiveCheckerDirect:
    def test_is_model_and_stability_disagree_on_unfounded(self):
        program = Control("a :- b. b :- a.").ground()
        assert is_model(program, set())  # empty is a classical model
        unfounded = {atom("a"), atom("b")}
        assert is_model(program, set(unfounded))
        assert not is_stable_model(program, set(unfounded))

    def test_stable_models_enumeration(self):
        program = Control("{ a }. b :- a.").ground()
        models = stable_models(program)
        as_strings = {frozenset(str(x) for x in m) for m in models}
        assert as_strings == {frozenset(), frozenset({"a", "b"})}

    def test_constraint_rejects_model(self):
        program = Control("{ a }. :- a.").ground()
        assert not is_stable_model(program, {atom("a")})
        assert is_stable_model(program, set())

"""Tests for occurrence-ordered cube generation.

The load-bearing property is the partition invariant: every total
assignment of the branch atoms must extend *exactly one* cube, because
the byte-identity of sharded enumeration rests on it.  The rest pins
the deterministic ordering and the cube-count arithmetic.
"""

import itertools

from repro.asp import Control, atom
from repro.asp.cubes import (
    generate_cubes,
    linear_cubes,
    occurrence_scores,
    order_by_occurrence,
)


def ground_of(text):
    return Control(text).ground()


ATOMS = [atom("c", index) for index in range(5)]


def extends(cube, assignment):
    return all(assignment[a] == value for a, value in cube)


class TestLinearCubes:
    def test_partition_invariant(self):
        for count in (2, 3, 4, 6, 16):
            cubes = linear_cubes(ATOMS, count)
            for values in itertools.product((False, True), repeat=len(ATOMS)):
                assignment = dict(zip(ATOMS, values))
                matching = [c for c in cubes if extends(c, assignment)]
                assert len(matching) == 1, (count, values)

    def test_cube_count(self):
        assert len(linear_cubes(ATOMS, 3)) == 3
        # capped at len(atoms) + 1
        assert len(linear_cubes(ATOMS, 99)) == len(ATOMS) + 1

    def test_degenerate_cases(self):
        assert linear_cubes(ATOMS, 1) == [()]
        assert linear_cubes(ATOMS, 0) == [()]
        assert linear_cubes([], 8) == [()]

    def test_shape(self):
        cubes = linear_cubes(ATOMS[:3], 4)
        assert cubes[0] == ((ATOMS[0], True),)
        assert cubes[1] == ((ATOMS[0], False), (ATOMS[1], True))
        assert cubes[-1] == tuple((a, False) for a in ATOMS[:3])


class TestOccurrenceOrdering:
    def test_body_occurrences_counted(self):
        program = ground_of(
            "{ a; b }. x :- a. y :- a. z :- not b. w :- a, not b."
        )
        scores = occurrence_scores(program, [atom("a"), atom("b")])
        assert scores[atom("a")] == 3
        assert scores[atom("b")] == 2

    def test_head_occurrences_not_counted(self):
        program = ground_of("{ a }. a :- b.")
        scores = occurrence_scores(program, [atom("a")])
        assert scores[atom("a")] == 0

    def test_aggregate_conditions_counted(self):
        program = ground_of("{ a }. n :- #count { 1 : a } >= 1.")
        scores = occurrence_scores(program, [atom("a")])
        assert scores[atom("a")] >= 1

    def test_ordering_is_stable_and_descending(self):
        program = ground_of("{ a; b; c }. x :- b. y :- b. z :- c.")
        ordered = order_by_occurrence(
            program, [atom("a"), atom("b"), atom("c")]
        )
        assert ordered == [atom("b"), atom("c"), atom("a")]


class TestGenerateCubes:
    def test_single_worker_is_one_empty_cube(self):
        program = ground_of("{ a; b }.")
        assert generate_cubes(program, [atom("a"), atom("b")], 1) == [()]

    def test_oversubscription_factor(self):
        program = ground_of("{ %s }." % "; ".join("x%d" % i for i in range(40)))
        candidates = [atom("x%d" % i) for i in range(40)]
        cubes = generate_cubes(program, candidates, 4)
        assert len(cubes) == 16  # workers * oversubscribe

    def test_partition_after_generation(self):
        program = ground_of("{ a; b; c }. p :- b. q :- c, not a.")
        candidates = [atom("a"), atom("b"), atom("c")]
        cubes = generate_cubes(program, candidates, 2)
        for values in itertools.product((False, True), repeat=3):
            assignment = dict(zip(candidates, values))
            assert sum(1 for c in cubes if extends(c, assignment)) == 1

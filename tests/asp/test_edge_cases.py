"""Edge-case and failure-injection tests for the ASP engine."""

import pytest

from repro.asp import Control, atom, parse_program, parse_term
from repro.asp.grounder import GroundingError, ground_program
from repro.asp.parser import ParseError
from repro.asp.solver import SolverError
from repro.asp.terms import Number, String, Symbol


def answer_sets(text):
    return {
        frozenset(str(a) for a in model.atoms)
        for model in Control(text).solve()
    }


class TestStringsAndTuples:
    def test_string_facts(self):
        ctl = Control('name(tank, "Main Water Tank").')
        model = ctl.first_model()
        assert model.contains(atom("name", "tank", "Main Water Tank"))

    def test_string_join(self):
        sets = answer_sets(
            'label("a"). label("b"). pair(X, Y) :- label(X), label(Y), X != Y.'
        )
        only = next(iter(sets))
        assert 'pair("a","b")' in only

    def test_tuple_terms(self):
        ctl = Control("edge((1,2)). node(X) :- edge((X, _)).")
        model = ctl.first_model()
        assert model.contains(atom("node", 1))

    def test_quoted_string_with_escape(self):
        ctl = Control(r'msg("say \"hi\"").')
        model = ctl.first_model()
        values = [a for a in model.atoms if a.predicate == "msg"]
        assert isinstance(values[0].arguments[0], String)
        assert values[0].arguments[0].value == 'say "hi"'


class TestArithmeticEdges:
    def test_negative_numbers(self):
        sets = answer_sets("p(-3). q(X + 5) :- p(X).")
        assert {"p(-3)", "q(2)"} <= next(iter(sets))

    def test_modulo(self):
        sets = answer_sets("n(1..6). even(X) :- n(X), X \\ 2 = 0.")
        only = next(iter(sets))
        assert {"even(2)", "even(4)", "even(6)"} <= only
        assert "even(1)" not in only

    def test_division_truncation(self):
        sets = answer_sets("p(7 / 2). q(-7 / 2).")
        assert {"p(3)", "q(-3)"} <= next(iter(sets))

    def test_interval_with_arithmetic_bounds(self):
        sets = answer_sets("#const n = 2. p(1..n*2).")
        assert {"p(1)", "p(2)", "p(3)", "p(4)"} == next(iter(sets))

    def test_empty_interval_derives_nothing(self):
        sets = answer_sets("p(5..3). q :- p(_).")
        assert next(iter(sets)) == frozenset()

    def test_comparison_between_symbols(self):
        # symbols are ordered lexicographically, numbers before symbols
        sets = answer_sets("v(a). v(b). first(X) :- v(X), v(Y), X < Y.")
        assert "first(a)" in next(iter(sets))


class TestChoiceEdgeCases:
    def test_choice_condition_with_negation(self):
        sets = answer_sets(
            """
            item(a). item(b). broken(b).
            { pick(X) : item(X), not broken(X) }.
            """
        )
        picks = {frozenset(a for a in s if a.startswith("pick")) for s in sets}
        assert picks == {frozenset(), frozenset({"pick(a)"})}

    def test_choice_over_empty_domain(self):
        sets = answer_sets("{ pick(X) : item(X) }.")
        assert sets == {frozenset()}

    def test_nested_dependency_through_choice(self):
        # atoms chosen in one choice feed the condition of another
        sets = answer_sets(
            """
            { a }.
            { b : a }.
            """
        )
        assert sets == {frozenset(), frozenset({"a"}), frozenset({"a", "b"})}

    def test_choice_bound_larger_than_elements_unsat(self):
        sets = answer_sets("item(a). 2 { pick(X) : item(X) }.")
        assert sets == set()

    def test_late_derived_choice_elements_counted(self):
        """Regression: elements derived after the choice rule's first
        instantiation must still appear (grounder re-registration)."""
        sets = answer_sets(
            """
            seed(a).
            item(X) :- seed(X).
            item(b) :- item(a).
            { pick(X) : item(X) }.
            :- #count { X : pick(X) } > 1.
            """
        )
        # {}, {a}, {b} — but never {a, b}
        picks = {
            frozenset(a for a in s if a.startswith("pick")) for s in sets
        }
        assert picks == {
            frozenset(),
            frozenset({"pick(a)"}),
            frozenset({"pick(b)"}),
        }


class TestConstOverride:
    def test_const_used_everywhere(self):
        sets = answer_sets(
            """
            #const limit = 3.
            n(1..limit).
            ok :- #count { X : n(X) } = limit.
            """
        )
        assert "ok" in next(iter(sets))


class TestFailureInjection:
    def test_unsafe_rule_message_names_variable(self):
        with pytest.raises(GroundingError) as excinfo:
            ground_program(parse_program("p(X) :- q."))
        assert "X" in str(excinfo.value)

    def test_parse_error_mid_program_no_partial_state(self):
        ctl = Control("good.")
        with pytest.raises(ParseError):
            ctl.add("bad syntax here !!!")
        # the earlier valid part still solves
        assert ctl.first_model() is not None

    def test_weak_constraint_symbol_weight_rejected(self):
        with pytest.raises(GroundingError):
            Control(":~ a. [oops@1] a.").ground()

    def test_aggregate_on_non_integer_weight_rejected(self):
        ctl = Control("v(a). bad :- #sum { X : v(X) } >= 1.")
        with pytest.raises(SolverError):
            ctl.solve()

    def test_deep_recursion_grounds(self):
        # 60-step successor chain: exercises semi-naive iteration depth
        ctl = Control(
            """
            n(0).
            n(X + 1) :- n(X), X < 60.
            """
        )
        model = ctl.first_model()
        assert model.contains(atom("n", 60))
        assert not model.contains(atom("n", 61))


class TestMinMaxInConstraints:
    def test_min_guard_in_constraint(self):
        sets = answer_sets(
            """
            v(1..4).
            { pick(X) : v(X) }.
            :- #min { X : pick(X) } < 2.
            ok :- pick(_).
            """
        )
        for model in sets:
            picks = {a for a in model if a.startswith("pick(")}
            if picks:
                values = {int(p[5:-1]) for p in picks}
                assert min(values) >= 2

    def test_max_guard_in_rule_body(self):
        sets = answer_sets(
            """
            v(1..4).
            { pick(X) : v(X) }.
            high :- #max { X : pick(X) } >= 3.
            """
        )
        for model in sets:
            picks = {int(a[5:-1]) for a in model if a.startswith("pick(")}
            expected = bool(picks) and max(picks) >= 3
            assert ("high" in model) == expected


class TestShowAndProjection:
    def test_show_multiple_signatures(self):
        ctl = Control(
            """
            a(1). b(2). c(3).
            #show a/1.
            #show c/1.
            """
        )
        model = ctl.first_model()
        shown = {str(s) for s in model.symbols()}
        assert shown == {"a(1)", "c(3)"}

    def test_show_keeps_full_atom_set_available(self):
        ctl = Control("a. b. #show a/0.")
        model = ctl.first_model()
        assert model.contains(atom("b"))

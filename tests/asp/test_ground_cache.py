"""The process-wide ground-program cache on :class:`Control`.

Grounding is memoized across controls keyed by the rendered program
text (the reuse pattern of the EPA engine, the CEGAR loop and the
mitigation optimizer, which all rebuild controls around the same model
facts).  These tests pin the cache contract: hits/misses are counted in
``statistics["grounding"]["cache"]``, ``add()`` invalidates, controls
with a trace sink bypass the cache (observability wins), and
:func:`clear_ground_cache` really empties it.
"""

import pytest

from repro.asp import Control, clear_ground_cache
from repro.observability import MemoryTraceSink, format_statistics

PROGRAM = """
component(tank). component(valve).
fault(leak).
potential_fault(C, F) :- component(C), fault(F).
"""


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_ground_cache()
    yield
    clear_ground_cache()


def cache_counters(control):
    cache = control.statistics.get_path("grounding.cache")
    return (
        cache.get("hits", 0) if cache else 0,
        cache.get("misses", 0) if cache else 0,
    )


def test_first_grounding_is_a_miss():
    control = Control(PROGRAM)
    control.ground()
    assert cache_counters(control) == (0, 1)


def test_same_text_second_control_hits():
    first = Control(PROGRAM)
    first_ground = first.ground()
    second = Control(PROGRAM)
    second_ground = second.ground()
    assert cache_counters(second) == (1, 0)
    # the cached instance itself is reused, not regrounded
    assert second_ground is first_ground


def test_cached_grounding_solves_identically():
    baseline = {frozenset(m.atoms) for m in Control(PROGRAM).solve()}
    cached = {frozenset(m.atoms) for m in Control(PROGRAM).solve()}
    assert cached == baseline


def test_hit_merges_grounding_statistics():
    Control(PROGRAM).ground()
    control = Control(PROGRAM)
    control.ground()
    assert control.statistics.get_path("grounding.rules") > 0
    assert control.statistics.get_path("grounding.cache.hits") == 1


def test_add_invalidates_per_control_and_misses():
    control = Control(PROGRAM)
    control.ground()
    control.add("component(pump).")
    control.ground()
    hits, misses = cache_counters(control)
    assert hits == 0 and misses == 2


def test_repeated_ground_same_control_uses_local_cache():
    control = Control(PROGRAM)
    first = control.ground()
    second = control.ground()
    assert first is second
    # no second cache transaction: the per-control memo answered
    assert cache_counters(control) == (0, 1)


def test_trace_sink_bypasses_shared_cache():
    Control(PROGRAM).ground()  # seed the shared cache
    sink = MemoryTraceSink()
    traced = Control(PROGRAM, trace=sink)
    traced.ground()
    hits, misses = cache_counters(traced)
    assert (hits, misses) == (0, 1)
    # the observability contract survives: grounder events were emitted
    assert any(event.name == "grounder.done" for event in sink.events)


def test_clear_ground_cache_forces_regrounding():
    Control(PROGRAM).ground()
    clear_ground_cache()
    control = Control(PROGRAM)
    control.ground()
    assert cache_counters(control) == (0, 1)


def test_format_statistics_shows_index_and_cache_lines():
    Control(PROGRAM).ground()
    control = Control(PROGRAM)
    control.solve()
    text = format_statistics(control.statistics)
    assert "Ground-cache" in text
    assert "1 hits, 0 misses" in text
    assert "Index" in text


class TestProcessMetrics:
    """The repro_ground_cache_{hits,misses}_total process counters."""

    def counters(self):
        from repro.observability.metrics import get_registry

        registry = get_registry()
        return (
            registry.counter("repro_ground_cache_hits_total"),
            registry.counter("repro_ground_cache_misses_total"),
        )

    def test_miss_then_hit_increment_the_counters(self):
        hits, misses = self.counters()
        hits_before, misses_before = hits.value, misses.value
        Control(PROGRAM).ground()
        assert misses.value == misses_before + 1
        assert hits.value == hits_before
        Control(PROGRAM).ground()
        assert hits.value == hits_before + 1
        assert misses.value == misses_before + 1

    def test_provenance_controls_bypass_cache_and_counters(self):
        first = Control(PROGRAM)
        first_ground = first.ground()
        hits, misses = self.counters()
        hits_before, misses_before = hits.value, misses.value
        tracked = Control(PROGRAM, provenance=True)
        tracked_ground = tracked.ground()
        # fresh grounding (cached instance has no origins): counts as a
        # miss — same accounting as trace-sink bypass — never as a hit
        assert tracked_ground is not first_ground
        assert tracked_ground.origins is not None
        assert hits.value == hits_before
        assert misses.value == misses_before + 1
        # and the provenance-tracking grounding was not shared back
        assert Control(PROGRAM).ground() is first_ground

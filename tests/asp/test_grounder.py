"""Unit tests for the grounder."""

import pytest

from repro.asp import Control, atom, parse_program
from repro.asp.grounder import Grounder, GroundingError, ground_program
from repro.asp.ground import GroundChoice
from repro.asp.syntax import Atom
from repro.asp.terms import Number, Symbol


def ground(text):
    return ground_program(parse_program(text))


class TestFacts:
    def test_fact_becomes_ground_rule(self):
        program = ground("p(a).")
        assert len(program.rules) == 1
        assert program.rules[0].head == atom("p", "a")
        assert program.rules[0].is_fact()

    def test_interval_fact_expands(self):
        program = ground("n(1..3).")
        heads = {rule.head for rule in program.rules}
        assert heads == {atom("n", 1), atom("n", 2), atom("n", 3)}

    def test_possible_atoms_collected(self):
        program = ground("p(a). q(X) :- p(X).")
        assert atom("q", "a") in program.possible_atoms


class TestJoin:
    def test_cartesian_product(self):
        program = ground("p(a). p(b). q(1). r(X,Y) :- p(X), q(Y).")
        heads = {r.head for r in program.rules if r.head.predicate == "r"}
        assert heads == {atom("r", "a", 1), atom("r", "b", 1)}

    def test_shared_variable_join(self):
        program = ground("p(a,1). p(b,2). q(1). r(X) :- p(X,Y), q(Y).")
        heads = {r.head for r in program.rules if r.head.predicate == "r"}
        assert heads == {atom("r", "a")}

    def test_transitive_closure(self):
        program = ground(
            """
            edge(1,2). edge(2,3). edge(3,4).
            path(X,Y) :- edge(X,Y).
            path(X,Z) :- path(X,Y), edge(Y,Z).
            """
        )
        heads = {r.head for r in program.rules if r.head.predicate == "path"}
        assert atom("path", 1, 4) in heads
        assert len({h for h in heads}) == 6

    def test_comparison_filters(self):
        program = ground("n(1..4). big(X) :- n(X), X >= 3.")
        heads = {r.head for r in program.rules if r.head.predicate == "big"}
        assert heads == {atom("big", 3), atom("big", 4)}

    def test_assignment_binds(self):
        program = ground("n(1..2). next(X,Y) :- n(X), Y = X + 1.")
        heads = {r.head for r in program.rules if r.head.predicate == "next"}
        assert heads == {atom("next", 1, 2), atom("next", 2, 3)}

    def test_assignment_from_interval(self):
        program = ground("p(X) :- X = 1..3.")
        heads = {r.head for r in program.rules if r.head.predicate == "p"}
        assert heads == {atom("p", 1), atom("p", 2), atom("p", 3)}

    def test_head_arithmetic_evaluated(self):
        program = ground("n(2). double(X*2) :- n(X).")
        heads = {r.head for r in program.rules if r.head.predicate == "double"}
        assert heads == {atom("double", 4)}


class TestNegation:
    def test_negative_literal_on_impossible_atom_dropped(self):
        program = ground("p :- not q.")
        rule = [r for r in program.rules if r.head == Atom("p")][0]
        assert rule.neg == ()

    def test_negative_literal_on_possible_atom_kept(self):
        program = ground("{ q }. p :- not q.")
        rule = [r for r in program.rules if r.head == Atom("p")][0]
        assert rule.neg == (Atom("q"),)

    def test_rule_with_certainly_true_negation_dropped(self):
        program = ground("q. p :- not q.")
        assert not any(r.head == Atom("p") for r in program.rules)

    def test_unsafe_negated_variable_raises(self):
        with pytest.raises(GroundingError):
            ground("p :- not q(X).")


class TestChoiceGrounding:
    def test_choice_instantiates_condition(self):
        program = ground("item(a). item(b). { sel(X) : item(X) }.")
        choice_rules = [
            r for r in program.rules if isinstance(r.head, GroundChoice)
        ]
        assert len(choice_rules) == 1
        atoms = set(choice_rules[0].head.atoms())
        assert atoms == {atom("sel", "a"), atom("sel", "b")}

    def test_choice_bounds_ground_to_ints(self):
        program = ground("item(a). 1 { sel(X) : item(X) } 1.")
        choice = [r for r in program.rules if isinstance(r.head, GroundChoice)][0]
        assert choice.head.lower == 1
        assert choice.head.upper == 1

    def test_choice_atoms_become_possible(self):
        program = ground("{ a; b }.")
        assert Atom("a") in program.possible_atoms
        assert Atom("b") in program.possible_atoms


class TestConstSubstitution:
    def test_const_in_fact(self):
        program = ground("#const n = 3. limit(n).")
        assert program.rules[0].head == atom("limit", 3)

    def test_const_in_interval(self):
        program = ground("#const n = 3. step(1..n).")
        heads = {r.head for r in program.rules}
        assert heads == {atom("step", 1), atom("step", 2), atom("step", 3)}

    def test_const_in_comparison(self):
        program = ground("#const n = 2. p(X) :- q(X), X < n. q(1). q(5).")
        heads = {r.head for r in program.rules if r.head.predicate == "p"}
        assert heads == {atom("p", 1)}


class TestAggregatesGrounding:
    def test_aggregate_elements_grounded_against_full_atom_set(self):
        # q atoms are derived *after* the rule with the aggregate is first
        # instantiated; elements must still include them.
        program = ground(
            """
            seed(a). seed(b).
            q(X) :- seed(X).
            p :- #count { X : q(X) } >= 2.
            """
        )
        rule = [r for r in program.rules if r.head == Atom("p")][0]
        assert len(rule.aggregates[0].elements) == 2

    def test_aggregate_guard_must_be_integer(self):
        with pytest.raises(GroundingError):
            ground("p :- #count { X : q(X) } >= a. q(1).")


class TestWeakConstraintGrounding:
    def test_weak_constraints_ground_per_binding(self):
        program = ground("sel(a). sel(b). :~ sel(X). [1@1, X]")
        assert len(program.weak_constraints) == 2
        assert {w.terms for w in program.weak_constraints} == {
            (Symbol("a"),),
            (Symbol("b"),),
        }

    def test_minimize_statement_grounds_to_weak_constraints(self):
        program = ground(
            "cost(a,2). cost(b,5). #minimize { W@1,X : cost(X,W) }."
        )
        weights = sorted(w.weight for w in program.weak_constraints)
        assert weights == [2, 5]


class TestSafety:
    def test_unbound_head_variable_raises(self):
        with pytest.raises(GroundingError):
            ground("p(X) :- q.")
        # and even with an unrelated body atom
        with pytest.raises(GroundingError):
            ground("q(1). p(X) :- q(Y).")

    def test_unbound_comparison_raises(self):
        with pytest.raises(GroundingError):
            ground("p :- X < Y.")


class TestSimplification:
    def test_rule_with_impossible_positive_body_dropped(self):
        program = ground("{ b }. p :- b, q.")  # q can never hold
        assert not any(r.head == Atom("p") for r in program.rules)

    def test_statistics(self):
        program = ground("p(1..3). q(X) :- p(X).")
        stats = program.statistics()
        assert stats["atoms"] == 6
        assert stats["rules"] == 6

"""Differential validation of the indexed grounder.

The grounder keeps a deliberately naive reference join path
(``Grounder(program, indexing=False)``: first-ready literal order, full
extension scans).  These tests ground the same programs through both
paths and require identical ground programs — same Herbrand base, same
rule multiset, same weak constraints — on the paper's listings, the
water-tank case study, and hypothesis-generated random programs.  Any
divergence means the argument indexes or the selectivity reordering
changed semantics, not just speed.
"""

from hypothesis import given, settings, strategies as st

from repro.asp import parse_program
from repro.asp.grounder import Grounder
from repro.casestudy import build_system_model
from repro.epa.rules import epa_rule_base
from repro.modeling.to_asp import to_asp_program

LISTING_1 = """
component(engineering_workstation). component(hmi).
fault(infected).
mitigation(infected, user_training).
active_mitigation(hmi, user_training).
potential_fault(C, F) :-
    component(C), fault(F),
    mitigation(F, M),
    not active_mitigation(C, M).
"""

LISTING_2 = """
step(1..3).
active_fault(c, stuck_at_x).
prev_component_state(c, 7).
component_state(C, X) :-
    prev_component_state(C, X),
    active_fault(C, stuck_at_x).
"""

RECURSIVE = """
node(1..5).
edge(X, Y) :- node(X), node(Y), Y = X + 1.
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
{ cut(X) : node(X) } 2.
blocked(X, Y) :- path(X, Y), cut(X), not cut(Y).
:- blocked(1, 5).
#minimize { 1, X : cut(X) }.
"""


def _signature(ground):
    """Order-insensitive fingerprint of a ground program."""
    return (
        sorted(str(atom) for atom in ground.possible_atoms),
        sorted(str(ground)[: len(str(ground))].splitlines()),
        sorted(ground.shows),
    )


def assert_same_grounding(text):
    program = parse_program(text)
    indexed = Grounder(program, indexing=True).ground()
    naive = Grounder(parse_program(text), indexing=False).ground()
    assert _signature(indexed) == _signature(naive)
    return indexed, naive


def test_listing_1_matches_naive():
    indexed, naive = assert_same_grounding(LISTING_1)
    rendered = str(indexed)
    assert "potential_fault(engineering_workstation,infected)" in rendered


def test_listing_2_matches_naive():
    indexed, _ = assert_same_grounding(LISTING_2)
    assert any(
        atom.predicate == "component_state"
        for atom in indexed.possible_atoms
    )


def test_recursive_choice_program_matches_naive():
    assert_same_grounding(RECURSIVE)


def test_water_tank_epa_program_matches_naive():
    """The real workload: case-study model facts + the EPA rule base."""
    program = to_asp_program(build_system_model())
    program.extend(parse_program(epa_rule_base()))
    program.extend(
        parse_program("{ active_fault(C, F) : fault_mode(C, F) }.")
    )
    indexed = Grounder(program, indexing=True).ground()
    naive = Grounder(program, indexing=False).ground()
    assert _signature(indexed) == _signature(naive)
    indexed_grounder = Grounder(program, indexing=True)
    indexed_grounder.ground()
    assert indexed_grounder.statistics["index"]["hits"] > 0
    naive_grounder = Grounder(program, indexing=False)
    naive_grounder.ground()
    assert naive_grounder.statistics["index"]["hits"] == 0


ATOMS = ["p", "q", "r"]


@st.composite
def random_rule_programs(draw):
    """Small non-ground programs over unary/binary predicates."""
    lines = ["num(1..%d)." % draw(st.integers(min_value=2, max_value=4))]
    n_facts = draw(st.integers(min_value=1, max_value=4))
    for _ in range(n_facts):
        predicate = draw(st.sampled_from(ATOMS))
        a = draw(st.integers(min_value=1, max_value=4))
        b = draw(st.integers(min_value=1, max_value=4))
        lines.append("%s(%d, %d)." % (predicate, a, b))
    n_rules = draw(st.integers(min_value=1, max_value=4))
    for _ in range(n_rules):
        head = draw(st.sampled_from(ATOMS + ["s"]))
        # X and Y are always bound through num/1, so every rule is safe
        # regardless of what the drawn extra literals contribute
        body = ["num(X)", "num(Y)"]
        body_size = draw(st.integers(min_value=0, max_value=2))
        variables = ["X", "Y"]
        for i in range(body_size):
            predicate = draw(st.sampled_from(ATOMS))
            body.append(
                "%s(%s, %s)" % (predicate, variables[i % 2], variables[(i + 1) % 2])
            )
        if draw(st.booleans()):
            negated = draw(st.sampled_from(ATOMS))
            body.append("not %s(X, Y)" % negated)
        lines.append("%s(X, Y) :- %s." % (head, ", ".join(body)))
    return "\n".join(lines)


@settings(max_examples=60, deadline=None)
@given(random_rule_programs())
def test_random_programs_match_naive(text):
    assert_same_grounding(text)

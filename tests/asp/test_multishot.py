"""Differential validation of multi-shot solving.

A multi-shot :class:`~repro.asp.Control` grounds once and answers many
queries by flipping external atoms, reusing one solver (learnt clauses,
phase saving, watch lists) across solves.  These tests require every
query answered that way to be *identical* to a fresh single-shot
control built for the same assignment — on the paper's Listing 1
program, hand-written programs, and hypothesis-generated random
programs.  Any divergence means solver reuse leaked state (a blocking
clause or optimum pin that outlived its solve), not just saved time.
"""

from hypothesis import given, settings, strategies as st

from repro.asp import Control, atom

LISTING_1 = """
component(engineering_workstation). component(hmi).
fault(infected).
mitigation(infected, user_training).
potential_fault(C, F) :-
    component(C), fault(F),
    mitigation(F, M),
    not active_mitigation(C, M).
"""


def model_sets(models):
    """Order-insensitive fingerprint of an enumeration."""
    return sorted(
        sorted(str(atom) for atom in model.atoms) for model in models
    )


def fresh_models(text, true_externals):
    """The single-shot baseline: externals become plain facts."""
    control = Control(text)
    for external in true_externals:
        control.add("%s." % external)
    return model_sets(control.solve())


class TestExternals:
    def test_add_external_defaults_to_false(self):
        control = Control("a :- e.", multishot=True)
        control.add_external("e")
        models = control.solve()
        assert model_sets(models) == [[]]

    def test_assign_external_flips_models(self):
        control = Control("a :- e.", multishot=True)
        control.add_external("e")
        control.assign_external("e", value=True)
        assert model_sets(control.solve()) == [["a", "e"]]
        control.assign_external("e", value=False)
        assert model_sets(control.solve()) == [[]]

    def test_assign_undeclared_external_rejected(self):
        control = Control("a.", multishot=True)
        try:
            control.assign_external("ghost", value=True)
        except ValueError:
            pass
        else:
            raise AssertionError("undeclared external accepted")

    def test_free_external_enumerates_both_values(self):
        control = Control("a :- e.", multishot=True)
        control.add_external("e")
        control.assign_external("e", value=None)
        assert model_sets(control.solve()) == [[], ["a", "e"]]

    def test_redeclaring_external_is_idempotent(self):
        control = Control("a :- e.", multishot=True)
        control.add_external("e")
        control.add_external("e")
        control.assign_external("e", value=True)
        assert model_sets(control.solve()) == [["a", "e"]]


class TestListing1:
    """The paper's Listing 1 with mitigation deployment as an external."""

    def deployments(self):
        return [
            (),
            (("hmi", "user_training"),),
            (("engineering_workstation", "user_training"),),
            (("hmi", "user_training"), ("engineering_workstation", "user_training")),
            (),  # return to the empty deployment: full retraction
        ]

    def test_sweep_matches_fresh_controls(self):
        control = Control(LISTING_1, multishot=True)
        for component in ("engineering_workstation", "hmi"):
            control.add_external("active_mitigation", component, "user_training")
        for deployment in self.deployments():
            deployed = set(deployment)
            for component in ("engineering_workstation", "hmi"):
                control.assign_external(
                    "active_mitigation",
                    component,
                    "user_training",
                    value=(component, "user_training") in deployed,
                )
            expected = fresh_models(
                LISTING_1,
                [
                    "active_mitigation(%s, %s)" % pair
                    for pair in sorted(deployed)
                ],
            )
            assert model_sets(control.solve()) == expected

    def test_sweep_reuses_ground_program_and_solver(self):
        control = Control(LISTING_1, multishot=True)
        control.add_external("active_mitigation", "hmi", "user_training")
        for value in (False, True, False, True):
            control.assign_external(
                "active_mitigation", "hmi", "user_training", value=value
            )
            control.solve()
        multishot = control.statistics["solving"]["multishot"]
        assert multishot["solves"] == 4
        assert multishot["reground_avoided"] == 3


class TestRetraction:
    """Per-solve clauses must not survive into the next solve."""

    CHOICES = "{ a }. { b }. c :- a, b."

    def test_repeated_enumeration_is_complete(self):
        control = Control(self.CHOICES, multishot=True)
        first = model_sets(control.solve())
        second = model_sets(control.solve())
        assert len(first) == 4
        assert first == second

    def test_limited_solve_does_not_poison_the_next(self):
        control = Control(self.CHOICES, multishot=True)
        assert len(control.solve(limit=2)) == 2
        assert len(control.solve()) == 4

    def test_assumptions_do_not_persist(self):
        control = Control(self.CHOICES, multishot=True)
        pinned = control.solve(assumptions=[(atom("a"), True)])
        assert pinned
        assert all("a" in atoms for atoms in model_sets(pinned))
        assert len(control.solve()) == 4

    def test_optimize_then_enumerate(self):
        control = Control(
            self.CHOICES + " #minimize { 1, a : a; 1, b : b }.",
            multishot=True,
        )
        best = control.optimize()
        assert best and best[0].cost == ((0, 0),)
        # the optimum pin and improvement clauses must all be retracted
        assert len(control.solve()) == 4
        # and the optimum must be rediscoverable from scratch
        again = control.optimize()
        assert again and again[0].cost == ((0, 0),)


class TestSolveIter:
    def test_solve_iter_streams_all_models(self):
        control = Control("{ a }. { b }.", multishot=True)
        streamed = model_sets(list(control.solve_iter()))
        assert streamed == model_sets(control.solve())

    def test_solve_iter_early_stop_keeps_control_usable(self):
        control = Control("{ a }. { b }.", multishot=True)
        iterator = control.solve_iter()
        next(iterator)
        iterator.close()
        assert len(control.solve()) == 4

    def test_first_model_and_is_satisfiable(self):
        control = Control("{ a }. :- not a.", multishot=True)
        model = control.first_model()
        assert model is not None and "a" in {str(x) for x in model.atoms}
        assert control.is_satisfiable()
        assert not control.is_satisfiable(assumptions=[(atom("a"), False)])
        # the UNSAT probe was assumption-scoped, not permanent
        assert control.is_satisfiable()


@st.composite
def random_external_programs(draw):
    """Random programs over two externals plus a random query schedule."""
    lines = []
    heads = ["p", "q", "r"]
    n_rules = draw(st.integers(min_value=1, max_value=4))
    for _ in range(n_rules):
        head = draw(st.sampled_from(heads))
        body = []
        for literal in ("e1", "e2", draw(st.sampled_from(heads))):
            if draw(st.booleans()):
                body.append(
                    "not %s" % literal if draw(st.booleans()) else literal
                )
        if head not in body:
            lines.append(
                "%s :- %s." % (head, ", ".join(body)) if body else "%s." % head
            )
    if draw(st.booleans()):
        lines.append("{ %s }." % draw(st.sampled_from(heads)))
    schedule = draw(
        st.lists(
            st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=4
        )
    )
    return "\n".join(lines), schedule


@settings(max_examples=40, deadline=None)
@given(random_external_programs())
def test_random_programs_match_fresh_controls(case):
    text, schedule = case
    control = Control(text, multishot=True)
    control.add_external("e1")
    control.add_external("e2")
    for e1, e2 in schedule:
        control.assign_external("e1", value=e1)
        control.assign_external("e2", value=e2)
        expected = fresh_models(
            text, [name for name, on in (("e1", e1), ("e2", e2)) if on]
        )
        assert model_sets(control.solve()) == expected

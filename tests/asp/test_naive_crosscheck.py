"""Property-based validation of the CDCL stable-model solver.

Random small normal logic programs (with negation, choices and positive
recursion) are solved both by the CDCL-based solver and the brute-force
reduct checker; the answer-set *sets* must be identical.  This guards the
completion + loop-nogood machinery, the most subtle part of the engine.
"""

from hypothesis import given, settings, strategies as st

from repro.asp import Control, parse_program
from repro.asp.grounder import ground_program
from repro.asp.naive import is_stable_model, stable_models
from repro.asp.solver import StableModelSolver

ATOMS = ["a", "b", "c", "d"]


@st.composite
def random_programs(draw):
    """Random propositional normal programs over a tiny alphabet."""
    lines = []
    n_rules = draw(st.integers(min_value=1, max_value=7))
    for _ in range(n_rules):
        kind = draw(st.sampled_from(["rule", "rule", "rule", "choice", "constraint"]))
        body_size = draw(st.integers(min_value=0, max_value=3))
        body = []
        for _ in range(body_size):
            negated = draw(st.booleans())
            atom_name = draw(st.sampled_from(ATOMS))
            body.append(("not " if negated else "") + atom_name)
        body_text = ", ".join(body)
        if kind == "constraint":
            if body:
                lines.append(":- %s." % body_text)
        elif kind == "choice":
            element = draw(st.sampled_from(ATOMS))
            lines.append(
                "{ %s }%s." % (element, (" :- " + body_text) if body else "")
            )
        else:
            head = draw(st.sampled_from(ATOMS))
            if body:
                lines.append("%s :- %s." % (head, body_text))
            else:
                lines.append("%s." % head)
    return "\n".join(lines)


def _solve_both(text):
    program = ground_program(parse_program(text))
    cdcl = {
        frozenset(model.atoms)
        for model in StableModelSolver(program).models()
    }
    brute = set(stable_models(program))
    return cdcl, brute


@settings(max_examples=120, deadline=None)
@given(random_programs())
def test_cdcl_matches_bruteforce(text):
    cdcl, brute = _solve_both(text)
    assert cdcl == brute, "program:\n%s\ncdcl=%s brute=%s" % (text, cdcl, brute)


@settings(max_examples=60, deadline=None)
@given(random_programs())
def test_every_cdcl_model_is_stable(text):
    program = ground_program(parse_program(text))
    for model in StableModelSolver(program).models():
        assert is_stable_model(program, set(model.atoms))


@st.composite
def recursive_programs(draw):
    """Programs biased toward positive recursion (non-tight)."""
    lines = ["{ seed }."]
    edges = draw(
        st.lists(
            st.tuples(st.sampled_from(ATOMS), st.sampled_from(ATOMS)),
            min_size=1,
            max_size=6,
        )
    )
    for head, body in edges:
        lines.append("%s :- %s." % (head, body))
    anchor = draw(st.sampled_from(ATOMS))
    lines.append("%s :- seed." % anchor)
    return "\n".join(lines)


@settings(max_examples=80, deadline=None)
@given(recursive_programs())
def test_nontight_programs_match_bruteforce(text):
    cdcl, brute = _solve_both(text)
    assert cdcl == brute, "program:\n%s" % text


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4),
    st.integers(min_value=0, max_value=10),
)
def test_sum_aggregate_matches_semantics(weights, bound):
    """#sum >= bound models equal direct subset enumeration."""
    atoms = ["x%d" % i for i in range(len(weights))]
    choice = "{ %s }." % "; ".join(atoms)
    elements = "; ".join(
        "%d,%s : %s" % (w, a, a) for w, a in zip(weights, atoms)
    )
    text = "%s ok :- #sum { %s } >= %d. :- not ok." % (choice, elements, bound)
    models = Control(text).solve()
    expected = 0
    for mask in range(2 ** len(weights)):
        total = sum(w for i, w in enumerate(weights) if mask >> i & 1)
        if total >= bound:
            expected += 1
    assert len(models) == expected

"""Unit tests for weak-constraint optimization."""

from repro.asp import Control, atom


class TestSingleLevel:
    def test_minimize_selects_cheapest(self):
        ctl = Control(
            """
            cost(a, 3). cost(b, 1). cost(c, 2).
            item(X) :- cost(X, _).
            1 { sel(X) : item(X) }.
            :~ sel(X), cost(X, W). [W@1, X]
            """
        )
        best = ctl.optimize()
        assert len(best) == 1
        assert best[0].contains(atom("sel", "b"))
        assert best[0].cost == ((1, 1),)
        assert best[0].optimal

    def test_minimize_statement(self):
        ctl = Control(
            """
            cost(a, 3). cost(b, 1).
            item(X) :- cost(X, _).
            1 { sel(X) : item(X) }.
            #minimize { W@1,X : sel(X), cost(X, W) }.
            """
        )
        best = ctl.optimize()
        assert best[0].cost == ((1, 1),)

    def test_maximize(self):
        ctl = Control(
            """
            value(a, 3). value(b, 1).
            item(X) :- value(X, _).
            1 { sel(X) : item(X) } 1.
            #maximize { W@1,X : sel(X), value(X, W) }.
            """
        )
        best = ctl.optimize()
        assert best[0].contains(atom("sel", "a"))
        assert best[0].cost == ((1, -3),)

    def test_unsat_returns_empty(self):
        ctl = Control("a. :- a. :~ a. [1@1]")
        assert ctl.optimize() == []

    def test_no_weak_constraints_returns_some_model(self):
        best = Control("{ a }.").optimize()
        assert len(best) == 1 and best[0].optimal


class TestSetCoverOptimization:
    COVER = """
    cost(m1, 4). cost(m2, 3). cost(m3, 2).
    mitigation(M) :- cost(M, _).
    blocks(m1, s1). blocks(m1, s2).
    blocks(m2, s2). blocks(m2, s3).
    blocks(m3, s3).
    scenario(s1). scenario(s2). scenario(s3).
    { deploy(M) : mitigation(M) }.
    blocked(S) :- deploy(M), blocks(M, S).
    :- scenario(S), not blocked(S).
    :~ deploy(M), cost(M, W). [W@1, M]
    """

    def test_min_cost_cover(self):
        best = Control(self.COVER).optimize()
        # optimal: m1 (covers s1,s2) + m3 (covers s3) = 6 < m1+m2 = 7
        assert best[0].cost == ((1, 6),)
        assert best[0].contains(atom("deploy", "m1"))
        assert best[0].contains(atom("deploy", "m3"))

    def test_enumerate_optimal_models(self):
        models = Control(self.COVER).optimize(enumerate_optimal=True)
        assert len(models) == 1
        assert all(m.cost == ((1, 6),) for m in models)


class TestMultiLevel:
    def test_lexicographic_priorities(self):
        # level 2 dominates: prefer fewer violations even if cost higher
        ctl = Control(
            """
            { a; b }.
            violation :- not a, not b.
            :~ violation. [1@2]
            :~ a. [5@1]
            :~ b. [3@1]
            """
        )
        best = ctl.optimize()
        # choose b alone: level2 = 0, level1 = 3
        assert best[0].cost == ((2, 0), (1, 3))
        assert best[0].contains(atom("b"))
        assert not best[0].contains(atom("a"))

    def test_equal_tuples_count_once(self):
        # two weak constraints with identical [1@1, t] fire together
        ctl = Control(
            """
            a.
            :~ a. [1@1, t]
            :~ a. [1@1, t]
            """
        )
        best = ctl.optimize()
        assert best[0].cost == ((1, 1),)

    def test_distinct_tuples_sum(self):
        ctl = Control(
            """
            a.
            :~ a. [1@1, t1]
            :~ a. [1@1, t2]
            """
        )
        best = ctl.optimize()
        assert best[0].cost == ((1, 2),)


class TestOptimizationWithAssumptions:
    def test_assumption_changes_optimum(self):
        text = """
        cost(a, 1). cost(b, 5).
        item(X) :- cost(X, _).
        1 { sel(X) : item(X) } 1.
        :~ sel(X), cost(X, W). [W@1, X]
        """
        unrestricted = Control(text).optimize()
        assert unrestricted[0].cost == ((1, 1),)
        forced = Control(text).optimize(assumptions=[(atom("sel", "b"), True)])
        assert forced[0].cost == ((1, 5),)

"""Unit tests for the ASP parser."""

import pytest

from repro.asp import parse_program, parse_term
from repro.asp.parser import ParseError
from repro.asp.syntax import (
    Aggregate,
    Atom,
    Choice,
    Comparison,
    Literal,
)
from repro.asp.terms import (
    BinaryOperation,
    Function,
    Interval,
    Number,
    String,
    Symbol,
    Variable,
)


class TestFactsAndRules:
    def test_simple_fact(self):
        program = parse_program("component(tank).")
        assert len(program.rules) == 1
        rule = program.rules[0]
        assert rule.is_fact()
        assert rule.head == Atom("component", (Symbol("tank"),))

    def test_zero_arity_fact(self):
        program = parse_program("alarm.")
        assert program.rules[0].head == Atom("alarm", ())

    def test_rule_with_body(self):
        program = parse_program("a(X) :- b(X), not c(X).")
        rule = program.rules[0]
        assert rule.head == Atom("a", (Variable("X"),))
        assert rule.body == (
            Literal(Atom("b", (Variable("X"),)), False),
            Literal(Atom("c", (Variable("X"),)), True),
        )

    def test_constraint(self):
        program = parse_program(":- a, b.")
        rule = program.rules[0]
        assert rule.head is None
        assert len(rule.body) == 2

    def test_multiple_statements(self):
        program = parse_program("a. b. c :- a, b.")
        assert len(program.rules) == 3

    def test_paper_listing_1_parses_verbatim(self):
        """Listing 1 (Fault Activation) from the paper."""
        text = """
        potential_fault(C, F) :-
            component(C), fault(F),
            mitigation(F, M),
            not active_mitigation(C, M).
        """
        program = parse_program(text)
        rule = program.rules[0]
        assert rule.head.predicate == "potential_fault"
        assert [type(b) for b in rule.body] == [Literal] * 4
        assert rule.body[3].negated

    def test_paper_listing_2_parses_verbatim(self):
        """Listing 2 (Fault Model) from the paper — note spaces before '('."""
        text = """
        component_state (C, X) :-
            prev_component_state (C, X),
            active_fault (C, stuck_at_x).
        """
        program = parse_program(text)
        rule = program.rules[0]
        assert rule.head == Atom("component_state", (Variable("C"), Variable("X")))
        assert rule.body[1].atom.arguments[1] == Symbol("stuck_at_x")


class TestTerms:
    def test_nested_function(self):
        term = parse_term("f(g(X), 3, a)")
        assert term == Function(
            "f", (Function("g", (Variable("X"),)), Number(3), Symbol("a"))
        )

    def test_string_term(self):
        assert parse_term('"hello world"') == String("hello world")

    def test_arithmetic_precedence(self):
        term = parse_term("1+2*3")
        assert term == BinaryOperation(
            "+", Number(1), BinaryOperation("*", Number(2), Number(3))
        )

    def test_interval(self):
        assert parse_term("1..5") == Interval(Number(1), Number(5))

    def test_negative_number(self):
        from repro.asp.terms import UnaryMinus, evaluate

        assert evaluate(parse_term("-3")) == Number(-3)

    def test_tuple_term(self):
        assert parse_term("(a, b)") == Function("", (Symbol("a"), Symbol("b")))

    def test_parenthesized_singleton_is_inner_term(self):
        assert parse_term("(a)") == Symbol("a")

    def test_anonymous_variables_are_distinct(self):
        program = parse_program("p(X) :- q(_, _), r(X).")
        q_literal = program.rules[0].body[0]
        first, second = q_literal.atom.arguments
        assert isinstance(first, Variable) and isinstance(second, Variable)
        assert first != second


class TestComparisons:
    def test_comparison_in_body(self):
        program = parse_program("p(X) :- q(X), X < 3.")
        comparison = program.rules[0].body[1]
        assert comparison == Comparison("<", Variable("X"), Number(3))

    def test_all_comparison_operators(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            program = parse_program("p :- q(X), X %s 1." % op)
            assert program.rules[0].body[1].operator == op

    def test_negated_comparison_flips_operator(self):
        program = parse_program("p :- q(X), not X < 3.")
        assert program.rules[0].body[1] == Comparison(">=", Variable("X"), Number(3))

    def test_assignment_with_arithmetic(self):
        program = parse_program("p(Y) :- q(X), Y = X + 1.")
        comparison = program.rules[0].body[1]
        assert comparison.operator == "="
        assert comparison.right == BinaryOperation("+", Variable("X"), Number(1))


class TestChoices:
    def test_bare_choice(self):
        program = parse_program("{ a; b }.")
        choice = program.rules[0].head
        assert isinstance(choice, Choice)
        assert [e.atom.predicate for e in choice.elements] == ["a", "b"]
        assert choice.lower is None and choice.upper is None

    def test_bounded_choice(self):
        program = parse_program("1 { sel(X) : item(X) } 2.")
        choice = program.rules[0].head
        assert choice.lower == Number(1)
        assert choice.upper == Number(2)
        assert choice.elements[0].condition[0].atom.predicate == "item"

    def test_exact_choice_via_equals(self):
        program = parse_program("{ sel(X) : item(X) } = 1.")
        choice = program.rules[0].head
        assert choice.lower == Number(1) and choice.upper == Number(1)

    def test_choice_with_body(self):
        program = parse_program("{ a } :- b.")
        rule = program.rules[0]
        assert isinstance(rule.head, Choice)
        assert rule.body[0].atom.predicate == "b"


class TestAggregates:
    def test_count_with_upper_guard(self):
        program = parse_program("p :- #count { X : q(X) } <= 3.")
        aggregate = program.rules[0].body[0]
        assert isinstance(aggregate, Aggregate)
        assert aggregate.function == "#count"
        assert aggregate.upper == Number(3)

    def test_count_with_lower_guard_on_left(self):
        program = parse_program("p :- 2 <= #count { X : q(X) }.")
        aggregate = program.rules[0].body[0]
        assert aggregate.lower == Number(2)

    def test_strict_guards_normalized(self):
        program = parse_program("p :- #count { X : q(X) } < 3.")
        aggregate = program.rules[0].body[0]
        # < 3 becomes <= 3-1
        assert aggregate.upper == BinaryOperation("-", Number(3), Number(1))

    def test_sum_with_weighted_elements(self):
        program = parse_program("p :- #sum { W,X : sel(X), cost(X,W) } >= 5.")
        aggregate = program.rules[0].body[0]
        assert aggregate.function == "#sum"
        assert aggregate.lower == Number(5)
        assert len(aggregate.elements[0].terms) == 2
        assert len(aggregate.elements[0].condition) == 2

    def test_negated_aggregate(self):
        program = parse_program("p :- not #count { X : q(X) } >= 1.")
        aggregate = program.rules[0].body[0]
        assert aggregate.negated


class TestDirectives:
    def test_show(self):
        program = parse_program("#show risk/2.")
        assert program.shows[0].predicate == "risk"
        assert program.shows[0].arity == 2

    def test_const(self):
        program = parse_program("#const horizon = 5.")
        assert program.consts["horizon"] == Number(5)

    def test_minimize(self):
        program = parse_program("#minimize { W@1,X : sel(X), cost(X,W) }.")
        element = program.minimize[0].elements[0]
        assert element.weight == Variable("W")
        assert element.priority == Number(1)

    def test_maximize_negates_weights(self):
        from repro.asp.terms import UnaryMinus

        program = parse_program("#maximize { W@1,X : sel(X), cost(X,W) }.")
        element = program.minimize[0].elements[0]
        assert element.weight == UnaryMinus(Variable("W"))


class TestWeakConstraints:
    def test_weak_constraint(self):
        program = parse_program(":~ sel(X), cost(X, W). [W@1, X]")
        weak = program.weak_constraints[0]
        assert weak.weight == Variable("W")
        assert weak.priority == Number(1)
        assert weak.terms == (Variable("X"),)

    def test_default_priority_zero(self):
        program = parse_program(":~ a. [2]")
        assert program.weak_constraints[0].priority == Number(0)


class TestComments:
    def test_line_comment(self):
        program = parse_program("a. % this is a comment\nb.")
        assert len(program.rules) == 2

    def test_block_comment(self):
        program = parse_program("a. %* multi\nline *% b.")
        assert len(program.rules) == 2


class TestErrors:
    def test_unterminated_rule(self):
        with pytest.raises(ParseError):
            parse_program("a :- b")

    def test_garbage_character(self):
        with pytest.raises(ParseError):
            parse_program("a ? b.")

    def test_error_reports_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("a.\nb ::- c.")
        assert excinfo.value.line == 2

    def test_number_as_rule_head_rejected(self):
        with pytest.raises(ParseError):
            parse_program("42 :- a.")

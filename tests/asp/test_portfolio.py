"""Tests for portfolio racing and the tunable search heuristics.

Two contracts.  First, the heuristic knobs (``default_phase``,
``restart_base``, ``seed``) must leave the *set* of answer sets
untouched — they steer the search, not the semantics — and the default
configuration must stay byte-identical to the historical solver.
Second, a portfolio race must return the same satisfiability verdict as
the serial solve, and any witness model it returns must actually be a
stable model of the program.
"""

import pytest

from repro.asp import Control, atom
from repro.asp.portfolio import (
    DEFAULT_PORTFOLIO,
    PortfolioConfig,
    race_first_model,
)
from repro.asp.solver import StableModelSolver

PROGRAM = """
{ p(1..6) } 3.
q :- p(1), p(2).
:- p(5), p(6).
"""

UNSAT_PROGRAM = PROGRAM + ":- not impossible.\n"


def model_sets(program_text, heuristics=None):
    solver = StableModelSolver(
        Control(program_text).ground(), heuristics=heuristics
    )
    return {frozenset(m.atoms) for m in solver.models()}


class TestHeuristicKnobs:
    REFERENCE = None

    def reference(self):
        if TestHeuristicKnobs.REFERENCE is None:
            TestHeuristicKnobs.REFERENCE = model_sets(PROGRAM)
        return TestHeuristicKnobs.REFERENCE

    @pytest.mark.parametrize(
        "heuristics",
        [
            {"default_phase": True},
            {"restart_base": 8},
            {"restart_base": 1},
            {"seed": 1},
            {"seed": 123456789},
            {"default_phase": True, "restart_base": 8, "seed": 7},
        ],
    )
    def test_knobs_preserve_answer_sets(self, heuristics):
        assert model_sets(PROGRAM, heuristics) == self.reference()

    def test_invalid_restart_base_rejected(self):
        from repro.asp.sat import SatError, Solver

        with pytest.raises(SatError):
            Solver(restart_base=0)

    def test_default_config_enumeration_order_unchanged(self):
        # not just the same set: the same order, byte for byte
        plain = [
            frozenset(m.atoms)
            for m in StableModelSolver(Control(PROGRAM).ground()).models()
        ]
        explicit = [
            frozenset(m.atoms)
            for m in StableModelSolver(
                Control(PROGRAM).ground(), heuristics={}
            ).models()
        ]
        assert plain == explicit


class TestRace:
    def test_sat_verdict_and_witness_validity(self):
        ground = Control(PROGRAM).ground()
        model, winner = race_first_model(ground)
        assert model is not None
        assert winner in {config.name for config in DEFAULT_PORTFOLIO}
        # the witness must be a stable model: pinning its choice atoms
        # on the serial solver reproduces it exactly
        assumptions = [
            (a, a in model.atoms)
            for a in (atom("p", i) for i in range(1, 7))
        ]
        iterator = StableModelSolver(ground).models(
            limit=1, assumptions=assumptions
        )
        check = next(iterator, None)
        iterator.close()
        assert check is not None
        assert check.atoms == model.atoms

    def test_unsat_verdict_matches_serial(self):
        ground = Control(UNSAT_PROGRAM).ground()
        model, _winner = race_first_model(ground)
        assert model is None

    def test_workers_one_degenerates_to_serial(self):
        ground = Control(PROGRAM).ground()
        model, winner = race_first_model(ground, workers=1)
        assert winner == "default"
        iterator = StableModelSolver(ground).models(limit=1)
        serial = next(iterator, None)
        iterator.close()
        assert model.atoms == serial.atoms

    def test_assumptions_respected(self):
        ground = Control(PROGRAM).ground()
        model, _winner = race_first_model(
            ground, assumptions=[(atom("p", 1), True), (atom("p", 2), True)]
        )
        assert model is not None
        assert atom("q") in model.atoms

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            race_first_model(Control(PROGRAM).ground(), configs=[])

    def test_custom_config_lineup(self):
        ground = Control(PROGRAM).ground()
        lineup = [PortfolioConfig("only", {"default_phase": True})]
        model, winner = race_first_model(ground, configs=lineup)
        assert winner == "only"
        assert model is not None


class TestControlIntegration:
    def test_first_model_workers_verdict(self):
        control = Control(PROGRAM)
        assert control.first_model(workers=2) is not None
        assert control.is_satisfiable(workers=2)

    def test_unsat_through_control(self):
        control = Control(UNSAT_PROGRAM)
        assert control.first_model(workers=2) is None
        assert not control.is_satisfiable(workers=2)

    def test_portfolio_stats_recorded(self):
        control = Control(PROGRAM)
        control.first_model(workers=2)
        stats = control.statistics
        assert stats["solving"]["portfolio"]["races"] == 1
        assert "winner" in stats["solving"]["portfolio"]


class TestClauseSharingRace:
    """Glue-clause exchange between racers may change latency only:
    the verdict must match the serial solve with sharing on or off,
    and any witness must still be a stable model of the program."""

    def test_sat_verdict_invariant_under_sharing(self):
        ground = Control(PROGRAM).ground()
        reference = model_sets(PROGRAM)
        for share in (True, False):
            model, _winner = race_first_model(
                ground, workers=3, share_clauses=share
            )
            assert model is not None
            assert frozenset(model.atoms) in reference

    def test_unsat_verdict_invariant_under_sharing(self):
        ground = Control(UNSAT_PROGRAM).ground()
        for share in (True, False):
            model, _winner = race_first_model(
                ground, workers=3, share_clauses=share
            )
            assert model is None

    def test_control_forwards_share_toggle(self):
        assert Control(PROGRAM).first_model(workers=2, share_clauses=False)
        assert not Control(UNSAT_PROGRAM).is_satisfiable(
            workers=2, share_clauses=False
        )

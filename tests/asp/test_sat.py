"""Unit tests for the CDCL SAT backend."""

import pytest

from repro.asp.sat import SatError, Solver, WeightedCounter, _luby


class TestBasics:
    def test_empty_formula_sat(self):
        assert Solver().solve() is not None

    def test_unit_clause(self):
        solver = Solver()
        v = solver.new_var()
        solver.add_clause([v])
        model = solver.solve()
        assert model[v] is True

    def test_contradictory_units_unsat(self):
        solver = Solver()
        v = solver.new_var()
        assert solver.add_clause([v])
        assert not solver.add_clause([-v])
        assert solver.solve() is None

    def test_zero_literal_rejected(self):
        with pytest.raises(SatError):
            Solver().add_clause([0])

    def test_tautology_ignored(self):
        solver = Solver()
        v = solver.new_var()
        assert solver.add_clause([v, -v])
        assert solver.solve() is not None

    def test_implication_chain(self):
        solver = Solver()
        vs = [solver.new_var() for _ in range(10)]
        solver.add_clause([vs[0]])
        for a, b in zip(vs, vs[1:]):
            solver.add_clause([-a, b])
        model = solver.solve()
        assert all(model[v] for v in vs)


class TestSearch:
    def test_simple_backtracking(self):
        solver = Solver()
        a, b, c = (solver.new_var() for _ in range(3))
        solver.add_clause([a, b])
        solver.add_clause([-a, c])
        solver.add_clause([-b, c])
        model = solver.solve()
        assert model[c] is True

    def test_pigeonhole_3_into_2_unsat(self):
        solver = Solver()
        # pigeon p in hole h: var[p][h]
        var = [[solver.new_var() for _ in range(2)] for _ in range(3)]
        for p in range(3):
            solver.add_clause([var[p][0], var[p][1]])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    solver.add_clause([-var[p1][h], -var[p2][h]])
        assert solver.solve() is None

    def test_random_3sat_satisfiable(self):
        import random

        rng = random.Random(7)
        solver = Solver()
        n = 20
        variables = [solver.new_var() for _ in range(n)]
        hidden = {v: rng.random() < 0.5 for v in variables}
        for _ in range(60):
            clause = []
            chosen = rng.sample(variables, 3)
            for v in chosen:
                clause.append(v if hidden[v] else -v)
            # flip some literals but keep at least one satisfied
            clause[1] = -clause[1] if rng.random() < 0.5 else clause[1]
            clause[2] = -clause[2] if rng.random() < 0.5 else clause[2]
            solver.add_clause(clause)
        assert solver.solve() is not None


class TestAssumptions:
    def test_assumption_fixes_literal(self):
        solver = Solver()
        v = solver.new_var()
        model = solver.solve(assumptions=[-v])
        assert model[v] is False

    def test_unsat_under_assumption_but_sat_globally(self):
        solver = Solver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        assert solver.solve(assumptions=[-a, -b]) is None
        assert solver.solve() is not None

    def test_conflicting_assumptions(self):
        solver = Solver()
        v = solver.new_var()
        assert solver.solve(assumptions=[v, -v]) is None


class TestIncremental:
    def test_add_clause_after_solve(self):
        solver = Solver()
        a = solver.new_var()
        model = solver.solve()
        assert model is not None
        solver.add_clause([a])
        model = solver.solve()
        assert model[a] is True

    def test_blocking_models_enumerates(self):
        solver = Solver()
        a, b = solver.new_var(), solver.new_var()
        count = 0
        while True:
            model = solver.solve()
            if model is None:
                break
            count += 1
            solver.add_clause(
                [-v if model[v] else v for v in (a, b)]
            )
        assert count == 4


class TestEncodingHelpers:
    def test_iff_and(self):
        solver = Solver()
        a, b, t = (solver.new_var() for _ in range(3))
        solver.add_iff_and(t, [a, b])
        solver.add_clause([t])
        model = solver.solve()
        assert model[a] and model[b]

    def test_iff_and_reverse(self):
        solver = Solver()
        a, b, t = (solver.new_var() for _ in range(3))
        solver.add_iff_and(t, [a, b])
        solver.add_clause([a])
        solver.add_clause([b])
        model = solver.solve()
        assert model[t]

    def test_iff_or(self):
        solver = Solver()
        a, b, t = (solver.new_var() for _ in range(3))
        solver.add_iff_or(t, [a, b])
        solver.add_clause([-a])
        solver.add_clause([-b])
        model = solver.solve()
        assert not model[t]


class TestWeightedCounter:
    def _count_models(self, n, weights, bound, polarity):
        solver = Solver()
        variables = [solver.new_var() for _ in range(n)]
        counter = WeightedCounter(solver, list(zip(variables, weights)))
        literal = counter.geq(bound)
        solver.add_clause([literal if polarity else -literal])
        count = 0
        while True:
            model = solver.solve()
            if model is None:
                return count
            count += 1
            solver.add_clause([-v if model[v] else v for v in variables])

    def test_geq_counts_subsets(self):
        # 4 unit weights, sum >= 2: C(4,2)+C(4,3)+C(4,4) = 11
        assert self._count_models(4, [1, 1, 1, 1], 2, True) == 11

    def test_negated_threshold(self):
        # sum < 2: C(4,0)+C(4,1) = 5
        assert self._count_models(4, [1, 1, 1, 1], 2, False) == 5

    def test_weighted(self):
        # weights 2,3,4; sum >= 5: {2,3},{2,4},{3,4},{2,3,4},{4}? no 4<5 -> 4 subsets
        assert self._count_models(3, [2, 3, 4], 5, True) == 4

    def test_trivial_bounds(self):
        solver = Solver()
        v = solver.new_var()
        counter = WeightedCounter(solver, [(v, 1)])
        always = counter.geq(0)
        never = counter.geq(2)
        solver.add_clause([always])
        solver.add_clause([-never])
        assert solver.solve() is not None

    def test_nonpositive_weight_rejected(self):
        solver = Solver()
        v = solver.new_var()
        with pytest.raises(SatError):
            WeightedCounter(solver, [(v, 0)])


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

"""Tests for the binary ground-program serializer.

The contract: ``loads_ground(dumps_ground(p))`` reproduces every field
of the program structurally, the encoding is meaningfully smaller than
a pickle of the same program, and the publish/shared cache behaves like
a fork warm path (hit without a blob after publish, decode-on-miss with
one).
"""

import pickle

import pytest

from repro.asp import Control
from repro.asp.grounder import Grounder
from repro.asp.parser import parse_program
from repro.asp.serialize import (
    SerializeError,
    clear_shared_programs,
    dumps_ground,
    loads_ground,
    publish,
    shared_program,
)

RICH_PROGRAM = """
item(1..3). weight(1, 4). weight(2, -2). weight(3, 7).
{ pick(I) : item(I) } 2.
named(f(a, g(1, "x"))).
heavy :- #sum { W, I : pick(I), weight(I, W) } >= 5.
:- #count { I : pick(I) } > 2.
covered :- pick(I), item(I).
:~ pick(I), weight(I, W). [W@1, I]
#show pick/1.
#show heavy/0.
"""


def rich_ground():
    return Control(RICH_PROGRAM).ground()


class TestRoundTrip:
    def test_all_fields_survive(self):
        program = rich_ground()
        back = loads_ground(dumps_ground(program))
        assert back.rules == program.rules
        assert back.weak_constraints == program.weak_constraints
        assert back.shows == program.shows
        assert back.possible_atoms == program.possible_atoms
        assert back.origins is None

    def test_atoms_reintern(self):
        # decoded atoms must be interchangeable with freshly built ones
        program = rich_ground()
        back = loads_ground(dumps_ground(program))
        assert set(back.possible_atoms) == set(program.possible_atoms)

    def test_solving_the_decoded_program_matches(self):
        from repro.asp.solver import StableModelSolver

        program = rich_ground()
        reference = {
            frozenset(m.atoms) for m in StableModelSolver(program).models()
        }
        decoded = loads_ground(dumps_ground(program))
        roundtrip = {
            frozenset(m.atoms) for m in StableModelSolver(decoded).models()
        }
        assert roundtrip == reference

    def test_empty_program(self):
        program = Control("").ground()
        back = loads_ground(dumps_ground(program))
        assert back.rules == program.rules
        assert back.possible_atoms == program.possible_atoms


class TestCompactness:
    def test_smaller_than_pickle(self):
        program = rich_ground()
        blob = dumps_ground(program)
        pickled = pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(blob) < len(pickled)


class TestRejections:
    def test_bad_magic(self):
        with pytest.raises(SerializeError):
            loads_ground(b"NOPE" + b"\x00" * 16)

    def test_provenance_programs_refused(self):
        grounder = Grounder(parse_program("a. b :- a."), provenance=True)
        program = grounder.ground()
        assert program.origins is not None
        with pytest.raises(SerializeError):
            dumps_ground(program)


class TestSharedCache:
    def setup_method(self):
        clear_shared_programs()

    def teardown_method(self):
        clear_shared_programs()

    def test_publish_then_lookup_is_identity(self):
        program = rich_ground()
        digest, _blob = publish(program)
        assert shared_program(digest) is program

    def test_miss_with_blob_decodes_and_caches(self):
        program = rich_ground()
        digest, blob = publish(program)
        clear_shared_programs()
        decoded = shared_program(digest, blob)
        assert decoded.rules == program.rules
        # second lookup hits the cache entry created by the decode
        assert shared_program(digest) is decoded

    def test_miss_without_blob_raises(self):
        with pytest.raises(KeyError):
            shared_program("0" * 64)

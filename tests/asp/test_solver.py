"""Unit tests for the stable-model solver (via the Control facade)."""

import pytest

from repro.asp import Control, atom
from repro.asp.solver import SolverError


def answer_sets(text):
    """All answer sets as a set of frozensets of atom strings."""
    return {
        frozenset(str(a) for a in model.atoms)
        for model in Control(text).solve()
    }


class TestBasicSemantics:
    def test_facts_only(self):
        assert answer_sets("a. b.") == {frozenset({"a", "b"})}

    def test_definite_rules(self):
        assert answer_sets("a. b :- a. c :- b.") == {frozenset({"a", "b", "c"})}

    def test_unsatisfiable_constraint(self):
        assert answer_sets("a. :- a.") == set()

    def test_constraint_prunes_models(self):
        sets = answer_sets("{ a }. :- a.")
        assert sets == {frozenset()}

    def test_negation_as_failure(self):
        assert answer_sets("a :- not b.") == {frozenset({"a"})}

    def test_even_negation_loop_two_models(self):
        assert answer_sets("a :- not b. b :- not a.") == {
            frozenset({"a"}),
            frozenset({"b"}),
        }

    def test_odd_negation_loop_unsat(self):
        assert answer_sets("a :- not a.") == set()

    def test_odd_loop_with_escape(self):
        sets = answer_sets("a :- not a. a :- b. b :- not c. c :- not b.")
        assert sets == {frozenset({"a", "b"})}


class TestFoundedness:
    def test_positive_loop_not_self_supporting(self):
        # supported-but-unfounded model {a, b} must be rejected
        assert answer_sets("a :- b. b :- a.") == {frozenset()}

    def test_positive_loop_with_external_support(self):
        sets = answer_sets("a :- b. b :- a. b :- c. c.")
        assert sets == {frozenset({"a", "b", "c"})}

    def test_loop_with_choice_support(self):
        sets = answer_sets("{ c }. a :- b. b :- a. b :- c.")
        assert sets == {frozenset(), frozenset({"a", "b", "c"})}

    def test_reachability_is_founded(self):
        text = """
        edge(1,2). edge(2,3). edge(3,1).
        { start(1) }.
        reach(X) :- start(X).
        reach(Y) :- reach(X), edge(X,Y).
        """
        sets = answer_sets(text)
        with_reach = [s for s in sets if "reach(1)" in s]
        without = [s for s in sets if "reach(1)" not in s]
        assert len(with_reach) == 1 and len(without) == 1
        assert {"reach(1)", "reach(2)", "reach(3)"} <= with_reach[0]

    def test_mutual_recursion_three_atoms(self):
        sets = answer_sets("a :- b. b :- c. c :- a.")
        assert sets == {frozenset()}


class TestChoice:
    def test_free_choice_powerset(self):
        sets = answer_sets("{ a; b }.")
        assert sets == {
            frozenset(),
            frozenset({"a"}),
            frozenset({"b"}),
            frozenset({"a", "b"}),
        }

    def test_cardinality_lower_bound(self):
        sets = answer_sets("1 { a; b }.")
        assert frozenset() not in sets
        assert len(sets) == 3

    def test_cardinality_exact(self):
        sets = answer_sets("item(x). item(y). item(z). 2 { pick(I) : item(I) } 2.")
        picks = {frozenset(a for a in s if a.startswith("pick")) for s in sets}
        assert len(picks) == 3

    def test_conditional_choice_guarded_by_body(self):
        sets = answer_sets("{ a } :- b.")
        assert sets == {frozenset()}  # b never holds, so a cannot be chosen

    def test_choice_upper_bound_zero(self):
        sets = answer_sets("{ a } 0.")
        assert sets == {frozenset()}


class TestAggregates:
    def test_count_lower(self):
        text = "item(1..3). { s(X) : item(X) }. ok :- #count { X : s(X) } >= 2. :- not ok."
        sets = answer_sets(text)
        assert all(sum(1 for a in s if a.startswith("s(")) >= 2 for a_ in [None] for s in sets)
        assert len(sets) == 4  # C(3,2)+C(3,3)

    def test_count_upper(self):
        text = "item(1..3). { s(X) : item(X) }. :- #count { X : s(X) } >= 2."
        sets = answer_sets(text)
        assert len(sets) == 4  # empty + 3 singletons

    def test_sum_with_negative_weights(self):
        text = """
        { a; b }.
        ok :- #sum { 2 : a; -1 : b } >= 1.
        """
        sets = answer_sets(text)
        ok_sets = {s for s in sets if "ok" in s}
        assert ok_sets == {frozenset({"a", "ok"}), frozenset({"a", "b", "ok"})}

    def test_sum_set_semantics_counts_tuple_once(self):
        # both conditions yield tuple (1,t): weight contributes once
        text = """
        a. b.
        ok :- #sum { 1,t : a; 1,t : b } >= 2.
        """
        sets = answer_sets(text)
        assert sets == {frozenset({"a", "b"})}  # ok must NOT hold

    def test_min_aggregate(self):
        text = """
        v(3). v(5).
        ok :- #min { X : v(X) } >= 3.
        bad :- #min { X : v(X) } >= 4.
        """
        sets = answer_sets(text)
        only = next(iter(sets))
        assert "ok" in only and "bad" not in only

    def test_max_aggregate(self):
        text = """
        v(3). v(5).
        ok :- #max { X : v(X) } >= 4.
        """
        sets = answer_sets(text)
        assert "ok" in next(iter(sets))

    def test_empty_min_is_sup(self):
        # no v/1 atoms: #min over empty set is #sup, so >= bound holds
        text = "{ u }. ok :- #min { X : v(X) } >= 100."
        sets = answer_sets(text)
        assert all("ok" in s for s in sets)

    def test_empty_max_fails_lower_guard(self):
        text = "{ u }. ok :- #max { X : v(X) } >= 0."
        sets = answer_sets(text)
        assert all("ok" not in s for s in sets)

    def test_recursive_aggregate_rejected(self):
        with pytest.raises(SolverError):
            Control("p(1). q(X) :- p(X), #count { Y : q(Y) } >= 0.").solve()


class TestAssumptions:
    def test_assumption_restricts_models(self):
        ctl = Control("{ a; b }.")
        models = ctl.solve(assumptions=[(atom("a"), True)])
        assert all(m.contains(atom("a")) for m in models)
        assert len(models) == 2

    def test_negative_assumption(self):
        ctl = Control("{ a }.")
        models = ctl.solve(assumptions=[(atom("a"), False)])
        assert len(models) == 1
        assert not models[0].contains(atom("a"))

    def test_assumption_on_impossible_atom(self):
        ctl = Control("b.")
        assert ctl.solve(assumptions=[(atom("zzz"), True)]) == []
        assert len(ctl.solve(assumptions=[(atom("zzz"), False)])) == 1


class TestShowAndModelApi:
    def test_show_filters_symbols(self):
        ctl = Control("a. b. #show a/0.")
        model = ctl.first_model()
        assert [str(s) for s in model.symbols()] == ["a"]
        assert len(model.symbols(shown=False)) == 2

    def test_model_contains(self):
        model = Control("p(1).").first_model()
        assert model.contains(atom("p", 1))
        assert not model.contains(atom("p", 2))

    def test_limit(self):
        assert len(Control("{ a; b; c }.").solve(limit=3)) == 3

    def test_brave_and_cautious(self):
        ctl = Control("a. b :- not c. c :- not b.")
        brave = {str(x) for x in ctl.brave_consequences()}
        cautious = {str(x) for x in ctl.cautious_consequences()}
        assert brave == {"a", "b", "c"}
        assert cautious == {"a"}


class TestDeterminism:
    def test_enumeration_is_deterministic(self):
        text = "{ a; b; c }. :- a, b, c."
        first = [sorted(map(str, m.atoms)) for m in Control(text).solve()]
        second = [sorted(map(str, m.atoms)) for m in Control(text).solve()]
        assert first == second

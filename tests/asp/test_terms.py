"""Unit tests for ASP term representation and operations."""

import pytest

from repro.asp.terms import (
    BinaryOperation,
    Function,
    Interval,
    Number,
    String,
    Symbol,
    TermError,
    UnaryMinus,
    Variable,
    compare,
    evaluate,
    match,
)


class TestGroundness:
    def test_number_is_ground(self):
        assert Number(3).is_ground()

    def test_symbol_is_ground(self):
        assert Symbol("tank").is_ground()

    def test_string_is_ground(self):
        assert String("water tank").is_ground()

    def test_variable_is_not_ground(self):
        assert not Variable("X").is_ground()

    def test_function_groundness_follows_arguments(self):
        assert Function("f", (Number(1), Symbol("a"))).is_ground()
        assert not Function("f", (Variable("X"),)).is_ground()

    def test_nested_function_groundness(self):
        inner = Function("g", (Variable("Y"),))
        assert not Function("f", (inner,)).is_ground()


class TestSubstitution:
    def test_variable_substitution(self):
        binding = {Variable("X"): Number(5)}
        assert Variable("X").substitute(binding) == Number(5)

    def test_unbound_variable_unchanged(self):
        assert Variable("X").substitute({}) == Variable("X")

    def test_function_substitution_recurses(self):
        term = Function("f", (Variable("X"), Function("g", (Variable("Y"),))))
        binding = {Variable("X"): Number(1), Variable("Y"): Symbol("a")}
        assert term.substitute(binding) == Function(
            "f", (Number(1), Function("g", (Symbol("a"),)))
        )

    def test_constants_are_fixed_points(self):
        binding = {Variable("X"): Number(1)}
        for term in (Number(2), Symbol("a"), String("s")):
            assert term.substitute(binding) == term


class TestEvaluate:
    def test_addition(self):
        assert evaluate(BinaryOperation("+", Number(2), Number(3))) == Number(5)

    def test_subtraction_and_multiplication(self):
        term = BinaryOperation(
            "*", BinaryOperation("-", Number(7), Number(2)), Number(4)
        )
        assert evaluate(term) == Number(20)

    def test_division_truncates_toward_zero(self):
        assert evaluate(BinaryOperation("/", Number(7), Number(2))) == Number(3)
        assert evaluate(BinaryOperation("/", Number(-7), Number(2))) == Number(-3)

    def test_division_by_zero_raises(self):
        with pytest.raises(TermError):
            evaluate(BinaryOperation("/", Number(1), Number(0)))

    def test_modulo(self):
        assert evaluate(BinaryOperation("\\", Number(7), Number(3))) == Number(1)

    def test_unary_minus(self):
        assert evaluate(UnaryMinus(Number(4))) == Number(-4)

    def test_unary_minus_on_symbol_raises(self):
        with pytest.raises(TermError):
            evaluate(UnaryMinus(Symbol("a")))

    def test_evaluate_inside_function(self):
        term = Function("f", (BinaryOperation("+", Number(1), Number(1)),))
        assert evaluate(term) == Function("f", (Number(2),))

    def test_evaluate_variable_raises(self):
        with pytest.raises(TermError):
            evaluate(Variable("X"))

    def test_arithmetic_on_symbol_raises(self):
        with pytest.raises(TermError):
            evaluate(BinaryOperation("+", Symbol("a"), Number(1)))


class TestInterval:
    def test_expansion(self):
        values = list(Interval(Number(2), Number(5)).expand())
        assert values == [Number(2), Number(3), Number(4), Number(5)]

    def test_empty_interval(self):
        assert list(Interval(Number(3), Number(2)).expand()) == []

    def test_expansion_with_arithmetic_bounds(self):
        interval = Interval(Number(1), BinaryOperation("+", Number(1), Number(1)))
        assert list(interval.expand()) == [Number(1), Number(2)]

    def test_non_numeric_bound_raises(self):
        with pytest.raises(TermError):
            list(Interval(Symbol("a"), Number(2)).expand())


class TestMatch:
    def test_variable_binds(self):
        binding = match(Variable("X"), Number(1), {})
        assert binding == {Variable("X"): Number(1)}

    def test_bound_variable_must_agree(self):
        existing = {Variable("X"): Number(1)}
        assert match(Variable("X"), Number(1), existing) == existing
        assert match(Variable("X"), Number(2), existing) is None

    def test_constant_match(self):
        assert match(Symbol("a"), Symbol("a"), {}) == {}
        assert match(Symbol("a"), Symbol("b"), {}) is None

    def test_function_match_binds_arguments(self):
        pattern = Function("f", (Variable("X"), Symbol("a")))
        ground = Function("f", (Number(1), Symbol("a")))
        assert match(pattern, ground, {}) == {Variable("X"): Number(1)}

    def test_function_arity_mismatch(self):
        pattern = Function("f", (Variable("X"),))
        ground = Function("f", (Number(1), Number(2)))
        assert match(pattern, ground, {}) is None

    def test_ground_arithmetic_matches_by_value(self):
        pattern = BinaryOperation("+", Number(1), Number(1))
        assert match(pattern, Number(2), {}) == {}
        assert match(pattern, Number(3), {}) is None

    def test_input_binding_never_mutated(self):
        binding = {}
        match(Variable("X"), Number(1), binding)
        assert binding == {}

    def test_repeated_variable_in_pattern(self):
        pattern = Function("f", (Variable("X"), Variable("X")))
        same = Function("f", (Number(1), Number(1)))
        different = Function("f", (Number(1), Number(2)))
        assert match(pattern, same, {}) == {Variable("X"): Number(1)}
        assert match(pattern, different, {}) is None


class TestOrdering:
    def test_numbers_before_symbols(self):
        assert compare(Number(100), Symbol("a")) < 0

    def test_symbols_before_functions(self):
        assert compare(Symbol("z"), Function("a", (Number(1),))) < 0

    def test_numeric_order(self):
        assert compare(Number(1), Number(2)) < 0
        assert compare(Number(2), Number(2)) == 0
        assert compare(Number(3), Number(2)) > 0

    def test_functions_ordered_by_arity_then_name(self):
        small = Function("z", (Number(1),))
        large = Function("a", (Number(1), Number(2)))
        assert compare(small, large) < 0

    def test_arithmetic_compared_by_value(self):
        assert compare(BinaryOperation("+", Number(1), Number(1)), Number(2)) == 0


class TestRendering:
    def test_function_rendering(self):
        term = Function("f", (Number(1), Symbol("a"), Variable("X")))
        assert str(term) == "f(1,a,X)"

    def test_string_rendering_escapes_quotes(self):
        assert str(String('say "hi"')) == '"say \\"hi\\""'

    def test_tuple_rendering(self):
        assert str(Function("", (Number(1), Number(2)))) == "(1,2)"

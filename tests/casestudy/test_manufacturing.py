"""Tests for the manufacturing robot-cell workload (generality check)."""

import pytest

from repro.casestudy import (
    MANUFACTURING_MITIGATIONS,
    RQ_NO_ROGUE_MOTION,
    RQ_QUALITY_GATE,
    RQ_SAFETY_AVAILABLE,
    build_manufacturing_model,
    manufacturing_engine,
    manufacturing_requirements,
)
from repro.core import AssessmentPipeline
from repro.epa import FaultRef, cheapest_attack
from repro.modeling import validate
from repro.security import AttackGraph, ThreatActor, builtin_catalog


@pytest.fixture(scope="module")
def report():
    return manufacturing_engine().analyze(max_faults=1)


class TestModel:
    def test_validates_cleanly(self):
        assert validate(build_manufacturing_model()).ok

    def test_it_and_ot_zones_present(self):
        from repro.modeling import Layer

        model = build_manufacturing_model()
        layers = {e.layer for e in model.elements}
        assert Layer.TECHNOLOGY in layers
        assert Layer.PHYSICAL in layers

    def test_firewall_masks_accidental_errors(self, report):
        """MES crash (omission) must not reach the robot through the
        masking firewall."""
        outcome = report.outcome_for(["mes.crash"])
        assert not outcome.violates(RQ_NO_ROGUE_MOTION)

    def test_firewall_does_not_stop_attackers(self, report):
        """A compromised MES pushes malicious traffic the firewall's
        plausibility checks cannot absorb."""
        outcome = report.outcome_for(["mes.compromised"])
        assert outcome.violates(RQ_NO_ROGUE_MOTION)


class TestHazards:
    def test_gateway_is_single_point_of_failure(self, report):
        spofs = {str(f) for f in report.single_points_of_failure()}
        assert "remote_gateway.compromised" in spofs

    def test_safety_plc_loss_flagged(self, report):
        outcome = report.outcome_for(["safety_plc.crash"])
        assert outcome.violates(RQ_SAFETY_AVAILABLE)

    def test_vision_misclassification_hits_quality_gate(self, report):
        outcome = report.outcome_for(["vision.misclassification"])
        assert outcome.violates(RQ_QUALITY_GATE)

    def test_criticality_ranks_plc_highly(self, report):
        criticality = report.criticality()
        assert "cell_plc" in criticality

    def test_mitigations_reduce_hazards(self):
        engine = manufacturing_engine()
        before = engine.analyze(max_faults=1)
        after = engine.analyze(
            max_faults=1,
            active_mitigations={
                "ot_firewall": ("M0930", "M0807"),
                "cell_plc": ("M0932", "M0807"),
                "remote_gateway": ("M0932",),
            },
        )
        assert len(after.violating()) < len(before.violating())


class TestSecurityIntegration:
    def test_attack_graph_enters_via_gateway_or_workstation(self):
        graph = AttackGraph(
            build_manufacturing_model(),
            builtin_catalog(),
            ThreatActor("apt", "H"),
        )
        entries = {
            component
            for component, technique in graph.states
            if graph.graph.has_edge("__outside__", (component, technique))
        }
        assert entries == {"remote_gateway", "engineering_ws"}

    def test_cheapest_attack_on_robot_requirement(self):
        engine = manufacturing_engine()
        result = cheapest_attack(engine, RQ_NO_ROGUE_MOTION)
        assert result.outcome.violates(RQ_NO_ROGUE_MOTION)
        assert result.outcome.fault_count == 1

    def test_full_pipeline_runs(self):
        pipeline = AssessmentPipeline(
            manufacturing_requirements(), builtin_catalog(), max_faults=1
        )
        result = pipeline.run(build_manufacturing_model())
        assert result.hazards
        assert result.register.worst().risk in ("H", "VH")
        assert result.plan is not None

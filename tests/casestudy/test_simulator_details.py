"""Detailed tests of the numeric tank simulator."""

import numpy as np
import pytest

from repro.casestudy import FaultInjection, TankParameters, simulate
from repro.qualitative import Sign, directions, tank_level_scale


class TestPhysics:
    def test_level_conserved_when_balanced(self):
        run = simulate(duration=10.0)
        # nominal: controller keeps the level in the normal band
        assert np.all(run.level >= 20.0)
        assert np.all(run.level <= 80.0)

    def test_level_never_negative_or_above_saturation(self):
        run = simulate(
            duration=50.0, faults=FaultInjection(output_stuck_closed=True)
        )
        assert np.all(run.level >= 0.0)
        assert np.all(run.level <= 1.2 * run.capacity)

    def test_rise_rate_matches_parameters(self):
        parameters = TankParameters(inflow_rate=10.0, outflow_rate=10.0)
        run = simulate(
            duration=2.0,
            parameters=parameters,
            faults=FaultInjection(output_stuck_closed=True),
        )
        deltas = np.diff(run.level) / parameters.dt
        # while rising unsaturated, d(level)/dt == inflow rate
        rising = deltas[(run.level[:-1] < run.capacity)]
        assert np.allclose(rising, 10.0)

    def test_monotone_rise_under_blocked_output(self):
        run = simulate(
            duration=10.0, faults=FaultInjection(output_stuck_closed=True)
        )
        signs = set(directions(run.level))
        assert Sign.MINUS not in signs

    def test_custom_capacity_scales_landmarks(self):
        parameters = TankParameters(capacity=200.0, initial_level=100.0)
        run = simulate(duration=5.0, parameters=parameters)
        space = tank_level_scale(200.0)
        assert run.qualitative_levels(space) == ["normal"]


class TestAlerting:
    def test_alert_timestamps_increase(self):
        run = simulate(
            duration=30.0, faults=FaultInjection(output_stuck_closed=True)
        )
        assert run.alerts == sorted(run.alerts)

    def test_alerts_rate_limited(self):
        run = simulate(
            duration=30.0, faults=FaultInjection(output_stuck_closed=True)
        )
        gaps = np.diff(run.alerts)
        assert np.all(gaps > 1.0)

    def test_no_alert_below_capacity(self):
        run = simulate(duration=10.0)
        assert run.alerts == []


class TestControlLoop:
    def test_larger_delay_still_caught_in_normal_band(self):
        slow = TankParameters(control_delay=1.5)
        run = simulate(duration=20.0, parameters=slow)
        assert not run.overflowed

    def test_out_valve_follows_level(self):
        run = simulate(duration=10.0)
        # in the nominal run the output valve stays open (balanced band)
        assert np.all(run.out_valve[1:] == 1)

    def test_valve_series_lengths(self):
        run = simulate(duration=5.0)
        assert len(run.time) == len(run.level) == len(run.in_valve) == len(
            run.out_valve
        )

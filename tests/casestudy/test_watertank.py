"""Case-study tests: Table II reproduction and the numeric simulator."""

import pytest

from repro.casestudy import (
    ACTIVE_MITIGATIONS,
    F1,
    F2,
    F3,
    F4,
    M1,
    M2,
    PAPER_SCENARIOS,
    R1,
    R2,
    FaultInjection,
    analysis_table,
    attack_chain_blocked,
    behavioural_epa,
    build_system_model,
    full_scenario_analysis,
    qualitative_agreement,
    simulate,
    static_engine,
)
from repro.modeling import validate
from repro.reporting import analysis_results_report


#: Table II of the paper, scenario -> (R1 violated, R2 violated)
PAPER_TABLE_II = {
    "S1": (False, False),
    "S2": (True, True),
    "S3": (False, False),
    "S4": (True, False),
    "S5": (True, True),
    "S6": (False, False),
    "S7": (True, True),
}


@pytest.fixture(scope="module")
def table_rows():
    return {row.scenario: row for row in analysis_table(horizon=4)}


class TestTableII:
    """The headline reproduction: every cell of Table II must match."""

    @pytest.mark.parametrize("scenario", sorted(PAPER_TABLE_II))
    def test_requirement_columns(self, table_rows, scenario):
        expected_r1, expected_r2 = PAPER_TABLE_II[scenario]
        row = table_rows[scenario]
        assert row.r1_violated == expected_r1, scenario
        assert row.r2_violated == expected_r2, scenario

    def test_mitigation_columns(self, table_rows):
        assert not table_rows["S2"].mitigations_active
        for name in ("S1", "S3", "S4", "S5", "S6", "S7"):
            assert table_rows[name].mitigations_active

    def test_fault_columns(self, table_rows):
        assert table_rows["S7"].faults == ("F1", "F2", "F3")
        assert table_rows["S2"].faults == ("F4",)
        assert table_rows["S1"].faults == ()

    def test_rendered_table_shape(self, table_rows):
        text = analysis_results_report(list(table_rows.values()))
        lines = text.splitlines()
        assert any("Violated" in line for line in lines)
        assert len([l for l in lines if l.startswith("S")]) == 7


class TestScenarioSemantics:
    def test_s5_is_most_severe_double_fault(self, table_rows):
        """S5 (F2+F3) violates both requirements with only two faults;
        S7 needs three simultaneous faults for the same violations."""
        s5 = table_rows["S5"]
        s7 = table_rows["S7"]
        assert (s5.r1_violated, s5.r2_violated) == (True, True)
        assert (s7.r1_violated, s7.r2_violated) == (True, True)
        assert len(s5.faults) < len(s7.faults)

    def test_mitigations_suppress_f4(self):
        """With M1/M2 active the infection scenario disappears from the
        scenario space — the paper's 'excluding this specific scenario'."""
        scenarios = full_scenario_analysis(horizon=3)
        assert all(F4 not in s.faults for s in scenarios)

    def test_unmitigated_space_contains_f4(self):
        epa = behavioural_epa()
        scenarios = epa.analyze(3)
        assert any(F4 in s.faults for s in scenarios)

    def test_full_space_is_every_combination(self):
        scenarios = full_scenario_analysis(horizon=3)
        # F1..F3 free (F4 suppressed): 8 combinations
        assert len(scenarios) == 8

    def test_f2_violation_has_overflow_witness(self):
        epa = behavioural_epa()
        scenarios = epa.analyze(4, active_mitigations=ACTIVE_MITIGATIONS)
        s4 = [s for s in scenarios if s.key() == (str(F2),)][0]
        witnesses = s4.witnesses(R1)
        assert witnesses
        from repro.asp import atom

        assert any(
            any(t.holds(atom("level", "overflow"), step) for step in range(5))
            for t in witnesses
        )


class TestArchitectureModel:
    def test_model_validates(self):
        report = validate(build_system_model())
        assert report.ok

    def test_paper_components_present(self):
        model = build_system_model()
        for identifier in (
            "water_tank",
            "level_sensor",
            "tank_controller",
            "input_valve",
            "output_valve",
            "hmi",
            "engineering_workstation",
        ):
            assert model.has_element(identifier)

    def test_static_engine_finds_hazards(self):
        report = static_engine().analyze(max_faults=1)
        assert report.violating()
        # the coarse level keeps the F4-style hazard visible
        assert any(
            F4 in outcome.active_faults for outcome in report.violating()
        )


class TestAttackChainMitigations:
    def test_unprotected_chain_reaches_process(self):
        assert not attack_chain_blocked({})

    def test_user_training_blocks_the_link(self):
        """M1 on the e-mail client cuts the chain at its first step."""
        assert attack_chain_blocked(
            {
                "email_client": [M1],
                "browser": [M2],
                "infected_computer": [M2],
            }
        )

    def test_partial_protection_insufficient(self):
        # only the browser is protected: the OS exploit path remains
        assert not attack_chain_blocked({"browser": [M2]})


class TestNumericSimulator:
    def test_nominal_run_stays_normal(self):
        run = simulate(duration=20.0)
        assert not run.overflowed
        assert run.qualitative_levels() == ["normal"]

    def test_output_stuck_closed_overflows(self):
        run = simulate(duration=20.0, faults=FaultInjection(output_stuck_closed=True))
        assert run.overflowed
        assert run.qualitative_levels()[-1] == "overflow"

    def test_alert_fires_unless_hmi_silent(self):
        noisy = simulate(
            duration=20.0, faults=FaultInjection(output_stuck_closed=True)
        )
        silent = simulate(
            duration=20.0,
            faults=FaultInjection(output_stuck_closed=True, hmi_silent=True),
        )
        assert noisy.alerts
        assert not silent.alerts

    def test_input_stuck_open_is_nominal(self):
        run = simulate(duration=20.0, faults=FaultInjection(input_stuck_open=True))
        assert not run.overflowed

    def test_agreement_with_qualitative_verdicts(self):
        """The numeric substrate confirms the Table II pattern."""
        agreement = qualitative_agreement()
        assert not agreement["nominal"]["overflowed"]
        assert not agreement["f1"]["overflowed"]
        assert agreement["f2"]["overflowed"] and agreement["f2"]["alerted"]
        assert agreement["f2_f3"]["overflowed"] and not agreement["f2_f3"]["alerted"]

    def test_overflow_signature_matches_qualitative_trace(self):
        run = simulate(duration=20.0, faults=FaultInjection(output_stuck_closed=True))
        assert run.qualitative_levels() == ["normal", "high", "overflow"]

"""Differential tests for the learnt-clause economy across the EPA
engine and the cube pool.

Three contracts.  First, the economy knobs (reduce-DB cadence via
``REPRO_REDUCE_BASE``, conflict minimization) must leave every EPA
report byte-identical — the economy changes how fast enumeration runs,
never what it enumerates.  Second, the pool's dispatch-time
``decorate`` hook rewrites items without disturbing result order or
crash recovery.  Third, cube-level glue sharing (exercised by forcing
every cube onto the CDCL fallback path) leaves the merged report
identical with sharing on, off, or absent (sequential).
"""

import pytest

from repro.asp.solver import ProjectionIncomplete, StableModelSolver
from repro.epa import EpaEngine, StaticRequirement
from repro.modeling import RelationshipType, SystemModel, standard_cps_library
from repro.parallel import WorkStealingPool

REQ = [
    StaticRequirement("rv", "err(v, K), hazardous_kind(K)", focus="v", magnitude="VH"),
]


def chain_model():
    library = standard_cps_library()
    model = SystemModel("chain")
    library.instantiate(model, "sensor", "s")
    library.instantiate(model, "controller", "c")
    library.instantiate(model, "actuator", "v")
    model.add_relationship("s", "c", RelationshipType.FLOW)
    model.add_relationship("c", "v", RelationshipType.FLOW)
    return model


def _pairs(report):
    return [
        (
            o.key(),
            tuple(sorted(o.violated)),
            o.severity_rank,
            tuple(sorted(o.detected_at)),
            tuple(sorted((c, tuple(sorted(k))) for c, k in o.erroneous.items())),
        )
        for o in report.outcomes
    ]


def _identity(item):  # must be module-level: pool workers pickle it
    return item


class TestEconomyDifferential:
    """EPA output is invariant under the economy's on/off switch."""

    def _analyze(self, monkeypatch, reduce_base, **kwargs):
        monkeypatch.setenv("REPRO_REDUCE_BASE", reduce_base)
        return EpaEngine(chain_model(), REQ).analyze(**kwargs)

    def test_sweep_identical_economy_on_off(self, monkeypatch):
        off = self._analyze(monkeypatch, "0", max_faults=2)
        on = self._analyze(monkeypatch, "1", max_faults=2)
        assert _pairs(on) == _pairs(off)

    def test_with_paths_identical_economy_on_off(self, monkeypatch):
        off = self._analyze(monkeypatch, "0", max_faults=2, with_paths=True)
        on = self._analyze(monkeypatch, "1", max_faults=2, with_paths=True)
        assert _pairs(on) == _pairs(off)
        assert [o.paths for o in on.outcomes] == [o.paths for o in off.outcomes]

    def test_restricted_sweep_identical_economy_on_off(self, monkeypatch):
        probe = EpaEngine(chain_model(), REQ).analyze(max_faults=2)
        restrict = [
            next(iter(o.active_faults))
            for o in probe.outcomes
            if o.fault_count == 1
        ][:4]
        off = self._analyze(
            monkeypatch, "0", max_faults=2, restrict_faults=restrict
        )
        on = self._analyze(
            monkeypatch, "1", max_faults=2, restrict_faults=restrict
        )
        assert _pairs(on) == _pairs(off)


class TestDecorateHook:
    def test_inprocess_decorate_rewrites_items(self):
        pool = WorkStealingPool(1)
        out = pool.map(
            _identity,
            [{"a": 1}, {"a": 2}],
            decorate=lambda index, item: dict(item, extra=index),
        )
        assert out == [{"a": 1, "extra": 0}, {"a": 2, "extra": 1}]

    def test_pool_decorate_runs_in_parent(self):
        # the hook itself is a closure (unpicklable): it must run at
        # dispatch time in the parent, only its output crossing to the
        # workers
        seen = []

        def decorate(index, item):
            seen.append(index)
            return dict(item, extra=index)

        pool = WorkStealingPool(2)
        out = pool.map(
            _identity, [{"a": i} for i in range(4)], decorate=decorate
        )
        assert out == [{"a": i, "extra": i} for i in range(4)]
        assert sorted(seen) == [0, 1, 2, 3]

    def test_decorate_absent_leaves_items_untouched(self):
        pool = WorkStealingPool(1)
        items = [{"a": 1}]
        assert pool.map(_identity, items) == items


class TestCubeGlueSharing:
    """Force every cube onto the CDCL fallback (where glue is exported
    and imported) and pin the merged report against the serial one."""

    def _force_fallback(self, monkeypatch):
        def raiser(self, project, on_model, assumptions=()):
            raise ProjectionIncomplete("forced by test")

        monkeypatch.setattr(StableModelSolver, "project_models", raiser)

    def test_fallback_report_identical_with_and_without_sharing(
        self, monkeypatch
    ):
        serial = EpaEngine(chain_model(), REQ).analyze(max_faults=2)
        self._force_fallback(monkeypatch)
        shared = EpaEngine(chain_model(), REQ, workers=2).analyze(
            max_faults=2
        )
        unshared = EpaEngine(
            chain_model(), REQ, workers=2, share_clauses=False
        ).analyze(max_faults=2)
        assert _pairs(shared) == _pairs(serial)
        assert _pairs(unshared) == _pairs(serial)

    def test_fallback_ships_economy_counters(self, monkeypatch):
        self._force_fallback(monkeypatch)
        engine = EpaEngine(chain_model(), REQ, workers=2)
        engine.analyze(max_faults=2)
        solvers = engine.statistics.get_path("solving.solvers")
        assert solvers is not None
        for key in ("learnt", "lbd_sum", "shared_exported", "shared_imported"):
            assert key in solvers
        assert "lbd_avg" in solvers

"""Tests for the command-line interface."""

import pytest

from repro.casestudy import build_system_model
from repro.cli import _parse_requirement, build_parser, main
from repro.modeling import to_xml


@pytest.fixture
def model_file(tmp_path):
    path = tmp_path / "model.xml"
    path.write_text(to_xml(build_system_model()), encoding="utf-8")
    return str(path)


class TestRequirementParsing:
    def test_simple(self):
        requirement = _parse_requirement("r1=err(valve, value)")
        assert requirement.name == "r1"
        assert requirement.condition == "err(valve, value)"
        assert requirement.magnitude == "H"

    def test_focus_and_magnitude(self):
        requirement = _parse_requirement("r1=err(v, value)@v!VH")
        assert requirement.focus == "v"
        assert requirement.magnitude == "VH"

    def test_missing_equals_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_requirement("just_a_name")


class TestCommands:
    def test_matrix(self, capsys):
        assert main(["matrix"]) == 0
        out = capsys.readouterr().out
        assert "O-RA risk matrix" in out
        assert "VH" in out

    def test_casestudy(self, capsys):
        assert main(["casestudy", "--horizon", "3"]) == 0
        out = capsys.readouterr().out
        assert "Analysis Results (Table II)" in out
        assert "Risk register" in out
        assert out.count("Violated") >= 6

    def test_validate_ok(self, capsys, model_file):
        assert main(["validate", model_file]) == 0
        out = capsys.readouterr().out
        assert "water_tank_system" in out

    def test_validate_bad_model(self, capsys, tmp_path):
        from repro.modeling import ElementType, RelationshipType, SystemModel

        model = SystemModel("bad")
        model.add_element("a", "A", ElementType.NODE)
        model.add_element("b", "B", ElementType.NODE)
        model.add_relationship(
            "a", "b", RelationshipType.PHYSICAL_CONNECTION, check=False
        )
        path = tmp_path / "bad.xml"
        path.write_text(to_xml(model), encoding="utf-8")
        assert main(["validate", str(path)]) == 1

    def test_analyze(self, capsys, model_file):
        code = main(
            [
                "analyze",
                model_file,
                "-r",
                "r1=err(water_tank, K), hazardous_kind(K)@water_tank!VH",
                "--max-faults",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scenarios analyzed" in out
        assert "single points of failure" in out

    def test_analyze_without_requirements_fails(self, capsys, model_file):
        assert main(["analyze", model_file]) == 2

    def test_analyze_stats(self, capsys, model_file):
        code = main(
            [
                "analyze",
                model_file,
                "-r",
                "r1=err(water_tank, K), hazardous_kind(K)@water_tank!VH",
                "--max-faults",
                "1",
                "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Models" in out
        assert "Choices" in out
        assert "Time" in out
        assert "Grounding" in out

    def test_analyze_trace_file(self, capsys, tmp_path, model_file):
        import json

        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "analyze",
                model_file,
                "-r",
                "r1=err(water_tank, K), hazardous_kind(K)@water_tank!VH",
                "--max-faults",
                "1",
                "--trace",
                str(trace_path),
            ]
        )
        assert code == 0
        records = [
            json.loads(line) for line in trace_path.read_text().splitlines()
        ]
        assert records
        names = {record["event"] for record in records}
        assert "grounder.done" in names
        assert "solver.model" in names

    def test_assess(self, capsys, model_file):
        code = main(["assess", model_file, "--max-faults", "1", "--stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ASSESSMENT REPORT" in out
        assert "Mitigation" in out
        # --stats appends the clingo-style summary block
        assert "Models" in out
        assert "Conflicts" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


REQUIREMENT = "r1=err(water_tank, K), hazardous_kind(K)@water_tank!VH"


class TestObservabilityFlags:
    def _analyze(self, model_file, *extra):
        return main(
            ["analyze", model_file, "-r", REQUIREMENT, "--max-faults", "1"]
            + list(extra)
        )

    def test_workers_and_trace_compose(self, capsys, tmp_path, model_file):
        """--workers N --trace FILE emits worker-tagged events from all
        workers and the analysis output stays identical to serial."""
        import json

        assert self._analyze(model_file) == 0
        serial_out = capsys.readouterr().out
        trace_path = tmp_path / "trace.jsonl"
        code = self._analyze(
            model_file, "--workers", "2", "--trace", str(trace_path)
        )
        assert code == 0
        assert capsys.readouterr().out == serial_out
        records = [
            json.loads(line) for line in trace_path.read_text().splitlines()
        ]
        workers = {r["worker"] for r in records if "worker" in r}
        assert workers == {0, 1}
        # replayed worker streams carry the per-cube enumeration spans
        tagged_names = {r["event"] for r in records if "worker" in r}
        assert "epa.cube" in tagged_names

    def test_trace_format_chrome(self, tmp_path, model_file):
        import json

        trace_path = tmp_path / "trace.json"
        code = self._analyze(
            model_file,
            "--trace",
            str(trace_path),
            "--trace-format",
            "chrome",
        )
        assert code == 0
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"]
        names = {e["name"] for e in doc["traceEvents"]}
        assert "epa.analyze" in names
        assert "control.solve" in names
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert complete and all(e["dur"] >= 0 for e in complete)

    def test_metrics_file(self, tmp_path, model_file):
        metrics_path = tmp_path / "metrics.prom"
        assert self._analyze(model_file, "--metrics", str(metrics_path)) == 0
        text = metrics_path.read_text()
        assert "# TYPE repro_models_total counter" in text
        assert "repro_solve_calls_total" in text
        assert 'repro_stage_seconds_bucket{stage="solve",le="+Inf"}' in text

    def test_metrics_dash_goes_to_stdout(self, capsys, model_file):
        assert self._analyze(model_file, "--metrics", "-") == 0
        assert "repro_models_total" in capsys.readouterr().out

    def test_metrics_reset_per_run(self, tmp_path, model_file):
        """Each solving command starts from a zeroed registry, so two
        identical runs report identical counter totals."""
        first = tmp_path / "first.prom"
        second = tmp_path / "second.prom"
        assert self._analyze(model_file, "--metrics", str(first)) == 0
        assert self._analyze(model_file, "--metrics", str(second)) == 0
        models = [
            line
            for line in first.read_text().splitlines()
            if line.startswith("repro_models_total ")
        ]
        assert models
        assert models == [
            line
            for line in second.read_text().splitlines()
            if line.startswith("repro_models_total ")
        ]

    def test_profile_dump(self, tmp_path, model_file):
        import pstats

        profile_path = tmp_path / "run.pstats"
        assert self._analyze(model_file, "--profile", str(profile_path)) == 0
        stats = pstats.Stats(str(profile_path))
        assert stats.stats  # non-empty profile

    def test_assess_takes_the_same_flags(self, capsys, tmp_path, model_file):
        import json

        trace_path = tmp_path / "assess.json"
        metrics_path = tmp_path / "assess.prom"
        code = main(
            [
                "assess",
                model_file,
                "--max-faults",
                "1",
                "--trace",
                str(trace_path),
                "--trace-format",
                "chrome",
                "--metrics",
                str(metrics_path),
            ]
        )
        assert code == 0
        doc = json.loads(trace_path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "pipeline.run" in names
        assert "pipeline.phase" in names
        assert "repro_stage_seconds" in metrics_path.read_text()

    def test_workers_help_mentions_composition(self):
        parser = build_parser()
        help_text = parser.format_help()
        # the old carve-out ("ignored while --trace is active") is gone
        sub_help = [
            a for a in parser._subparsers._group_actions[0].choices.items()
        ]
        analyze_help = dict(sub_help)["analyze"].format_help()
        assert "ignored while --trace" not in analyze_help
        assert "worker" in analyze_help


class TestRunLedgerCli:
    def _analyze(self, model_file, *extra):
        return main(
            ["analyze", model_file, "-r", REQUIREMENT, "--max-faults", "1"]
            + list(extra)
        )

    def test_round_trip_diffs_to_zero_deltas(
        self, capsys, tmp_path, model_file
    ):
        """Two identical runs share a config digest and diff clean."""
        root = str(tmp_path / "runs")
        assert self._analyze(model_file, "--runs-root", root) == 0
        assert self._analyze(model_file, "--runs-root", root) == 0
        capsys.readouterr()
        assert main(["runs", "diff", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "config: match" in out
        assert "result: match" in out
        assert "zero deltas" in out

    def test_runs_list_and_show(self, capsys, tmp_path, model_file):
        root = str(tmp_path / "runs")
        assert self._analyze(model_file, "--runs-root", root) == 0
        capsys.readouterr()
        assert main(["runs", "list", "--root", root]) == 0
        row = capsys.readouterr().out.strip()
        assert "complete" in row
        assert "analyze" in row
        assert "scenarios=" in row
        assert main(["runs", "show", "--root", root]) == 0
        import json

        manifest = json.loads(capsys.readouterr().out)
        assert manifest["command"] == "analyze"
        assert manifest["status"] == "complete"
        assert "result_digest" in manifest
        assert manifest["config"]["max_faults"] == 1

    def test_runs_gc_drops_old_runs(self, capsys, tmp_path, model_file):
        root = str(tmp_path / "runs")
        for _ in range(3):
            assert self._analyze(model_file, "--runs-root", root) == 0
        capsys.readouterr()
        assert main(["runs", "gc", "--keep", "1", "--root", root]) == 0
        assert "removed 2 run(s)" in capsys.readouterr().out
        assert main(["runs", "list", "--root", root]) == 0
        rows = capsys.readouterr().out.strip().splitlines()
        assert len(rows) == 1

    def test_runs_list_empty_root(self, capsys, tmp_path):
        root = str(tmp_path / "empty")
        assert main(["runs", "list", "--root", root]) == 0
        assert "no recorded runs" in capsys.readouterr().out

    def test_runs_diff_without_baseline_fails_cleanly(
        self, capsys, tmp_path, model_file
    ):
        root = str(tmp_path / "runs")
        assert self._analyze(model_file, "--runs-root", root) == 0
        capsys.readouterr()
        assert main(["runs", "diff", "--root", root]) == 1
        assert "config digest" in capsys.readouterr().err

    def test_manifest_flag_writes_oneshot_manifest(
        self, tmp_path, model_file
    ):
        import json

        path = tmp_path / "manifest.json"
        assert self._analyze(model_file, "--manifest", str(path)) == 0
        manifest = json.loads(path.read_text())
        assert manifest["command"] == "analyze"
        assert manifest["status"] == "complete"
        assert manifest["config_digest"]
        assert manifest["result_digest"]
        assert manifest["summary"]["scenarios"] > 0

    def test_progress_renders_live_line_on_stderr(self, capsys, model_file):
        assert self._analyze(model_file, "--progress") == 0
        captured = capsys.readouterr()
        assert "scenarios" in captured.err
        assert captured.err.endswith("\n")
        # the report on stdout stays clean
        assert "scenarios analyzed" in captured.out

    def test_stream_run_records_matching_digests(
        self, capsys, tmp_path, model_file
    ):
        """Streamed runs round-trip through the ledger too."""
        root = str(tmp_path / "runs")
        args = ("--stream", "--runs-root", root)
        assert self._analyze(model_file, *args) == 0
        assert self._analyze(model_file, *args) == 0
        capsys.readouterr()
        assert main(["runs", "diff", "--root", root]) == 0
        assert "zero deltas" in capsys.readouterr().out


class TestStreamingCli:
    def test_analyze_stream(self, capsys, model_file):
        code = main(
            [
                "analyze",
                model_file,
                "-r",
                REQUIREMENT,
                "--max-faults",
                "1",
                "--stream",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scenarios analyzed" in out
        assert "single points of failure" in out

    def test_stream_matches_materialized_counts(self, capsys, model_file):
        args = ["analyze", model_file, "-r", REQUIREMENT, "--max-faults", "2"]
        assert main(args) == 0
        materialized = capsys.readouterr().out
        assert main(args + ["--stream"]) == 0
        streamed = capsys.readouterr().out
        # "N scenarios analyzed, M violating" vs
        # "scenarios analyzed: N (M violating, ...)"
        import re

        counts = re.search(
            r"(\d+) scenarios analyzed, (\d+) violating", materialized
        )
        header = re.search(
            r"scenarios analyzed: (\d+) \((\d+) violating", streamed
        )
        assert counts.groups() == header.groups()

    def test_checkpoint_implies_stream(self, capsys, tmp_path, model_file):
        token = tmp_path / "sweep.ckpt"
        code = main(
            [
                "analyze",
                model_file,
                "-r",
                REQUIREMENT,
                "--max-faults",
                "1",
                "--checkpoint",
                str(token),
            ]
        )
        assert code == 0
        assert token.exists()
        assert "scenarios analyzed" in capsys.readouterr().out
        # resume from the completed token reproduces the run
        assert (
            main(
                [
                    "analyze",
                    model_file,
                    "-r",
                    REQUIREMENT,
                    "--max-faults",
                    "1",
                    "--checkpoint",
                    str(token),
                ]
            )
            == 0
        )

    def test_cube_factor_flag(self, capsys, model_file):
        code = main(
            [
                "analyze",
                model_file,
                "-r",
                REQUIREMENT,
                "--max-faults",
                "1",
                "--stream",
                "--workers",
                "2",
                "--cube-factor",
                "2",
                "--stream-mode",
                "models",
            ]
        )
        assert code == 0
        assert "scenarios analyzed" in capsys.readouterr().out

    def test_fleet_generates_model(self, capsys, tmp_path):
        out_path = tmp_path / "fleet.xml"
        code = main(
            [
                "fleet",
                "--tiers",
                "3",
                "--components",
                "3",
                "--fault-modes",
                "2",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "18 fault pairs" in out
        assert "exact scenario count at max-faults=2: 172" in out
        assert "analyze with:" in out
        from repro.modeling import from_xml

        model = from_xml(out_path.read_text(encoding="utf-8"))
        assert len(model.elements) == 9

    def test_fleet_count_only(self, capsys):
        assert main(["fleet", "--tiers", "2", "--components", "2"]) == 0
        out = capsys.readouterr().out
        assert "8 fault pairs" in out
        assert "analyze with:" not in out

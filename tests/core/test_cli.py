"""Tests for the command-line interface."""

import pytest

from repro.casestudy import build_system_model
from repro.cli import _parse_requirement, build_parser, main
from repro.modeling import to_xml


@pytest.fixture
def model_file(tmp_path):
    path = tmp_path / "model.xml"
    path.write_text(to_xml(build_system_model()), encoding="utf-8")
    return str(path)


class TestRequirementParsing:
    def test_simple(self):
        requirement = _parse_requirement("r1=err(valve, value)")
        assert requirement.name == "r1"
        assert requirement.condition == "err(valve, value)"
        assert requirement.magnitude == "H"

    def test_focus_and_magnitude(self):
        requirement = _parse_requirement("r1=err(v, value)@v!VH")
        assert requirement.focus == "v"
        assert requirement.magnitude == "VH"

    def test_missing_equals_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_requirement("just_a_name")


class TestCommands:
    def test_matrix(self, capsys):
        assert main(["matrix"]) == 0
        out = capsys.readouterr().out
        assert "O-RA risk matrix" in out
        assert "VH" in out

    def test_casestudy(self, capsys):
        assert main(["casestudy", "--horizon", "3"]) == 0
        out = capsys.readouterr().out
        assert "Analysis Results (Table II)" in out
        assert "Risk register" in out
        assert out.count("Violated") >= 6

    def test_validate_ok(self, capsys, model_file):
        assert main(["validate", model_file]) == 0
        out = capsys.readouterr().out
        assert "water_tank_system" in out

    def test_validate_bad_model(self, capsys, tmp_path):
        from repro.modeling import ElementType, RelationshipType, SystemModel

        model = SystemModel("bad")
        model.add_element("a", "A", ElementType.NODE)
        model.add_element("b", "B", ElementType.NODE)
        model.add_relationship(
            "a", "b", RelationshipType.PHYSICAL_CONNECTION, check=False
        )
        path = tmp_path / "bad.xml"
        path.write_text(to_xml(model), encoding="utf-8")
        assert main(["validate", str(path)]) == 1

    def test_analyze(self, capsys, model_file):
        code = main(
            [
                "analyze",
                model_file,
                "-r",
                "r1=err(water_tank, K), hazardous_kind(K)@water_tank!VH",
                "--max-faults",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scenarios analyzed" in out
        assert "single points of failure" in out

    def test_analyze_without_requirements_fails(self, capsys, model_file):
        assert main(["analyze", model_file]) == 2

    def test_analyze_stats(self, capsys, model_file):
        code = main(
            [
                "analyze",
                model_file,
                "-r",
                "r1=err(water_tank, K), hazardous_kind(K)@water_tank!VH",
                "--max-faults",
                "1",
                "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Models" in out
        assert "Choices" in out
        assert "Time" in out
        assert "Grounding" in out

    def test_analyze_trace_file(self, capsys, tmp_path, model_file):
        import json

        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "analyze",
                model_file,
                "-r",
                "r1=err(water_tank, K), hazardous_kind(K)@water_tank!VH",
                "--max-faults",
                "1",
                "--trace",
                str(trace_path),
            ]
        )
        assert code == 0
        records = [
            json.loads(line) for line in trace_path.read_text().splitlines()
        ]
        assert records
        names = {record["event"] for record in records}
        assert "grounder.done" in names
        assert "solver.model" in names

    def test_assess(self, capsys, model_file):
        code = main(["assess", model_file, "--max-faults", "1", "--stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ASSESSMENT REPORT" in out
        assert "Mitigation" in out
        # --stats appends the clingo-style summary block
        assert "Models" in out
        assert "Conflicts" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

"""CLI coverage for the refined-model pipeline path and requirement flag."""

import pytest

from repro.casestudy import build_system_model, refined_system_model
from repro.cli import main
from repro.modeling import to_xml


@pytest.fixture
def model_files(tmp_path):
    coarse = tmp_path / "model.xml"
    coarse.write_text(to_xml(build_system_model()), encoding="utf-8")
    refined = tmp_path / "refined.xml"
    refined.write_text(to_xml(refined_system_model()), encoding="utf-8")
    return str(coarse), str(refined)


class TestAssessWithRefinement:
    def test_refined_model_flows_through_cegar_phase(
        self, capsys, model_files
    ):
        coarse, refined = model_files
        code = main(
            ["assess", coarse, "--refined", refined, "--max-faults", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Model Refinement" in out
        assert "spurious" in out

    def test_custom_requirements_override_defaults(self, capsys, model_files):
        coarse, _ = model_files
        code = main(
            [
                "assess",
                coarse,
                "-r",
                "only_tank=err(water_tank, K), hazardous_kind(K)@water_tank!VH",
                "--max-faults",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "only_tank" in out

    def test_budget_flag(self, capsys, model_files):
        coarse, _ = model_files
        code = main(
            ["assess", coarse, "--max-faults", "1", "--budget", "15"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Mitigation" in out

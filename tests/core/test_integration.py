"""Cross-module integration tests.

These check the *seams*: model XML round-trips feeding the pipeline,
agreement between the topology-level and behaviour-level analyses on
the case study, and consistency between the scenario space, the attack
graph and the mitigation optimizer.
"""

import pytest

from repro.casestudy import (
    ACTIVE_MITIGATIONS,
    F2,
    F3,
    F4,
    M1,
    M2,
    R1,
    R2,
    behavioural_epa,
    build_system_model,
    static_engine,
    static_requirements,
)
from repro.core import AssessmentPipeline
from repro.epa import EpaEngine, FaultRef, cheapest_attack
from repro.mitigation import BlockingProblem, optimize_asp
from repro.modeling import from_xml, to_xml, validate
from repro.security import (
    AttackGraph,
    AttackScenarioSpace,
    ThreatActor,
    builtin_catalog,
)


class TestXmlRoundtripIntoPipeline:
    def test_serialized_model_produces_identical_analysis(self):
        original = build_system_model()
        restored = from_xml(to_xml(original))
        requirements = static_requirements()
        report_a = EpaEngine(original, requirements).analyze(max_faults=1)
        report_b = EpaEngine(restored, requirements).analyze(max_faults=1)
        keys_a = {o.key(): o.violated for o in report_a.outcomes}
        keys_b = {o.key(): o.violated for o in report_b.outcomes}
        assert keys_a == keys_b

    def test_roundtrip_model_validates(self):
        restored = from_xml(to_xml(build_system_model()))
        assert validate(restored).ok

    def test_pipeline_over_roundtripped_model(self):
        restored = from_xml(to_xml(build_system_model()))
        pipeline = AssessmentPipeline(
            static_requirements(), builtin_catalog(), max_faults=1
        )
        result = pipeline.run(restored)
        assert result.hazards


class TestTopologyVsBehaviourConsistency:
    """The coarse (topology) analysis must over-approximate the detailed
    (behavioural) one — the Fig. 1 step 5 guarantee that 'no actual
    hazardous attack is overlooked'."""

    PAPER_FAULTS = (
        FaultRef("input_valve", "stuck_at_open"),
        FaultRef("output_valve", "stuck_at_closed"),
        FaultRef("hmi", "no_signal"),
        FaultRef("engineering_workstation", "infected"),
    )

    def test_behavioural_violations_imply_topology_violations(self):
        behavioural = behavioural_epa().analyze(
            4, active_mitigations=ACTIVE_MITIGATIONS
        )
        topology = static_engine().analyze(
            active_mitigations={"engineering_workstation": (M1, M2)},
            restrict_faults=self.PAPER_FAULTS,
        )
        topology_by_key = {o.key(): o for o in topology.outcomes}
        for scenario in behavioural:
            if not scenario.violated:
                continue
            coarse = topology_by_key[scenario.key()]
            # every behaviourally confirmed hazard appears at the coarse
            # level too (possibly with more violations — over-approx.)
            assert scenario.violated <= coarse.violated, scenario.key()

    def test_topology_has_spurious_candidates(self):
        """The converse must NOT hold: over-abstraction produces
        spurious solutions the refinement later eliminates (S3/F1 is the
        paper's example: coarse analysis flags it, behaviour clears it)."""
        behavioural = behavioural_epa().analyze(
            4, active_mitigations=ACTIVE_MITIGATIONS
        )
        topology = static_engine().analyze(
            active_mitigations={"engineering_workstation": (M1, M2)},
            restrict_faults=self.PAPER_FAULTS,
        )
        behavioural_by_key = {s.key(): s for s in behavioural}
        f1_key = ("input_valve.stuck_at_open",)
        assert topology.outcome_for(f1_key).violates(R1)  # coarse: flagged
        assert R1 not in behavioural_by_key[f1_key].violated  # refined: safe


class TestScenarioSpaceOptimizerGraphConsistency:
    def test_optimizer_plan_blocks_graph_paths(self):
        """A blocking plan computed from the scenario space must also
        cut the attack graph's entry techniques."""
        model = build_system_model()
        catalog = builtin_catalog()
        actor = ThreatActor("apt", "H")
        space = AttackScenarioSpace(model, catalog, [actor], max_chain=2)
        problem = BlockingProblem()
        for entry in catalog.mitigations:
            problem.add_mitigation(entry.identifier, entry.implementation_cost)
        for scenario in space.scenarios():
            blockers = set()
            for step_blockers in space.blocking_mitigations(scenario):
                blockers |= step_blockers
            problem.add_scenario(str(scenario), sorted(blockers), "H")
        plan = optimize_asp(problem)
        assert plan.complete
        # the plan must cover the entry step of every scenario chain's
        # technique or some later step: verify scenario-level blocking
        for scenario in space.scenarios():
            step_mitigations = set()
            for step_blockers in space.blocking_mitigations(scenario):
                step_mitigations |= step_blockers
            assert step_mitigations & plan.deployed, str(scenario)

    def test_cheapest_attack_consistent_with_scenario_space(self):
        """Components the attack graph cannot reach never appear as the
        entry of a violating technique chain."""
        model = build_system_model()
        catalog = builtin_catalog()
        graph = AttackGraph(model, catalog, ThreatActor("apt", "H"))
        space = AttackScenarioSpace(
            model, catalog, [ThreatActor("apt", "H")], max_chain=2
        )
        reachable = graph.reachable_components()
        for scenario in space.scenarios():
            assert set(scenario.components) <= reachable


class TestMitigationEconomy:
    def test_blocking_raises_attack_cost(self):
        """Deploying the plan raises (or infinitizes) the cheapest
        attack against R2 through the workstation."""
        engine = static_engine()
        costs = {}
        for element in engine.model.elements:
            for fault in element.properties.get("fault_modes", []) or []:
                reference = FaultRef(element.identifier, fault["name"])
                costs[reference] = 2 if fault["name"] == "infected" else 9
        before = cheapest_attack(engine, R2, costs)
        assert before.objective == 2  # the infection is the cheap path
        after = cheapest_attack(
            engine,
            R2,
            costs,
            active_mitigations={"engineering_workstation": (M1, M2)},
        )
        assert after.objective > before.objective

"""Tests for the worker-pool layer and the sharded EPA sweeps.

The contract under test: parallel runs are *identical* to sequential
ones (same results, same order), and pool-level failures surface as
clean exceptions — a crashed worker process must become an
:class:`~repro.epa.EpaError`, never a hang or a half-filled report.
"""

import itertools
import os

import pytest

from repro.epa import EpaEngine, EpaError, StaticRequirement
from repro.hierarchy.cegar import cegar_loop
from repro.observability import SolveStats
from repro.parallel import ParallelError, merge_stats, parallel_map, split_cubes
from repro.qualitative.spaces import QuantitySpace
from repro.risk.sensitivity import one_at_a_time
from repro.modeling import RelationshipType, SystemModel, standard_cps_library

REQ = [
    StaticRequirement("rv", "err(v, K), hazardous_kind(K)", focus="v", magnitude="VH"),
]


def chain_model():
    library = standard_cps_library()
    model = SystemModel("chain")
    library.instantiate(model, "sensor", "s")
    library.instantiate(model, "controller", "c")
    library.instantiate(model, "actuator", "v")
    model.add_relationship("s", "c", RelationshipType.FLOW)
    model.add_relationship("c", "v", RelationshipType.FLOW)
    return model


def _square(value):  # must be module-level: the process backend pickles it
    return value * value


def _die(payload):  # simulates a worker killed by the OS (OOM, signal)
    os._exit(1)


class TestParallelMap:
    def test_preserves_submission_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=4) == [
            value * value for value in items
        ]

    def test_degenerate_cases_run_sequentially(self):
        assert parallel_map(_square, [3], workers=8) == [9]
        assert parallel_map(_square, [2, 3], workers=1) == [4, 9]
        assert parallel_map(_square, [], workers=4) == []

    def test_thread_backend_supports_closures(self):
        offset = 10
        results = parallel_map(
            lambda v: v + offset, range(8), workers=4, backend="thread"
        )
        assert results == [v + 10 for v in range(8)]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1, 2], workers=2, backend="fiber")

    def test_function_exceptions_propagate(self):
        def boom(value):
            raise KeyError(value)

        with pytest.raises(KeyError):
            parallel_map(boom, [1, 2, 3], workers=2, backend="thread")

    def test_crashed_worker_raises_parallel_error(self):
        with pytest.raises(ParallelError):
            parallel_map(_die, [1, 2, 3, 4], workers=2)


class TestSplitCubes:
    def test_single_worker_is_one_empty_cube(self):
        assert split_cubes(["a", "b"], 1) == [()]
        assert split_cubes([], 4) == [()]

    @pytest.mark.parametrize("workers", [2, 3, 4, 8])
    def test_cubes_partition_the_space(self, workers):
        choices = ["a", "b", "c", "d"]
        cubes = split_cubes(choices, workers)
        assert len(cubes) >= workers or len(cubes) == 2 ** len(choices)
        # every total assignment is consistent with exactly one cube
        for assignment in itertools.product(
            (False, True), repeat=len(choices)
        ):
            point = dict(zip(choices, assignment))
            matching = [
                cube
                for cube in cubes
                if all(point[name] == value for name, value in cube)
            ]
            assert len(matching) == 1

    def test_prefix_capped_by_choice_count(self):
        cubes = split_cubes(["only"], 8)
        assert sorted(cubes) == [(("only", False),), (("only", True),)]


class TestMergeStats:
    def test_numeric_leaves_sum(self):
        target = SolveStats()
        target.incr("solving.models", 2)
        merged = merge_stats(
            target,
            [
                {"solving": {"models": 3}, "summary": {"calls": 1}},
                {"solving": {"models": 5}},
            ],
        )
        assert merged["solving"]["models"] == 10
        assert merged["summary"]["calls"] == 1


class TestShardedAnalyze:
    def test_parallel_report_equals_sequential(self):
        sequential = EpaEngine(chain_model(), REQ).analyze(max_faults=2)
        parallel = EpaEngine(chain_model(), REQ, workers=4).analyze(max_faults=2)
        assert [
            (o.key(), tuple(sorted(o.violated)), o.severity_rank)
            for o in parallel.outcomes
        ] == [
            (o.key(), tuple(sorted(o.violated)), o.severity_rank)
            for o in sequential.outcomes
        ]

    def test_parallel_run_accounts_shards_in_stats(self):
        engine = EpaEngine(chain_model(), REQ, workers=4)
        engine.analyze(max_faults=1)
        stats = engine.statistics
        assert stats["epa"]["parallel"]["shards"] >= 4
        assert stats["epa"]["parallel"]["workers"] == 4
        # worker solving counters were folded back into the parent tree
        assert stats["solving"]["models"] >= 10

    def test_crashed_worker_becomes_epa_error(self, monkeypatch):
        import repro.epa.engine as engine_module

        monkeypatch.setattr(engine_module, "_cube_worker", _die)
        engine = EpaEngine(chain_model(), REQ, workers=4)
        with pytest.raises(EpaError):
            engine.analyze(max_faults=1)


class TestThreadedCallers:
    def test_cegar_verdicts_match_sequential(self):
        engine = EpaEngine(chain_model(), REQ)
        report = engine.analyze(max_faults=2)
        oracle = lambda outcome: outcome.fault_count <= 1
        run = lambda workers: cegar_loop(
            analysis=lambda: report,
            oracle=oracle,
            refiner=lambda spurious: None,
            workers=workers,
        )
        sequential, threaded = run(None), run(4)
        assert [o.key() for o in threaded.confirmed] == [
            o.key() for o in sequential.confirmed
        ]
        assert threaded.converged == sequential.converged

    def test_sensitivity_results_match_sequential(self):
        space = QuantitySpace("risk", ("VL", "L", "M", "H", "VH"))
        table = {
            ("L", "VL"): "VL",
            ("L", "L"): "VL",
            ("L", "M"): "L",
            ("L", "VH"): "M",
        }
        function = lambda lef, lm: table[(lef, lm)]
        kwargs = dict(
            fixed={"lef": "L"},
            uncertain={"lm": ("VL", "L", "M", "VH")},
            outcome_space=space,
        )
        assert one_at_a_time(function, workers=4, **kwargs) == one_at_a_time(
            function, **kwargs
        )

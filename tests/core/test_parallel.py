"""Tests for the worker-pool layer and the sharded EPA sweeps.

The contract under test: parallel runs are *identical* to sequential
ones (same results, same order), and pool-level failures surface as
clean exceptions — a crashed worker process must become an
:class:`~repro.epa.EpaError`, never a hang or a half-filled report.
"""

import itertools
import os

import pytest

from repro.epa import EpaEngine, EpaError, StaticRequirement
from repro.hierarchy.cegar import cegar_loop
from repro.observability import SolveStats
from repro.parallel import ParallelError, merge_stats, parallel_map, split_cubes
from repro.qualitative.spaces import QuantitySpace
from repro.risk.sensitivity import one_at_a_time
from repro.modeling import RelationshipType, SystemModel, standard_cps_library

REQ = [
    StaticRequirement("rv", "err(v, K), hazardous_kind(K)", focus="v", magnitude="VH"),
]


def chain_model():
    library = standard_cps_library()
    model = SystemModel("chain")
    library.instantiate(model, "sensor", "s")
    library.instantiate(model, "controller", "c")
    library.instantiate(model, "actuator", "v")
    model.add_relationship("s", "c", RelationshipType.FLOW)
    model.add_relationship("c", "v", RelationshipType.FLOW)
    return model


def _square(value):  # must be module-level: the process backend pickles it
    return value * value


def _die(payload):  # simulates a worker killed by the OS (OOM, signal)
    os._exit(1)


class TestParallelMap:
    def test_preserves_submission_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=4) == [
            value * value for value in items
        ]

    def test_degenerate_cases_run_sequentially(self):
        assert parallel_map(_square, [3], workers=8) == [9]
        assert parallel_map(_square, [2, 3], workers=1) == [4, 9]
        assert parallel_map(_square, [], workers=4) == []

    def test_thread_backend_supports_closures(self):
        offset = 10
        results = parallel_map(
            lambda v: v + offset, range(8), workers=4, backend="thread"
        )
        assert results == [v + 10 for v in range(8)]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1, 2], workers=2, backend="fiber")

    def test_function_exceptions_propagate(self):
        def boom(value):
            raise KeyError(value)

        with pytest.raises(KeyError):
            parallel_map(boom, [1, 2, 3], workers=2, backend="thread")

    def test_crashed_worker_raises_parallel_error(self):
        with pytest.raises(ParallelError):
            parallel_map(_die, [1, 2, 3, 4], workers=2)


class TestSplitCubes:
    def test_single_worker_is_one_empty_cube(self):
        assert split_cubes(["a", "b"], 1) == [()]
        assert split_cubes([], 4) == [()]

    @pytest.mark.parametrize("workers", [2, 3, 4, 8])
    def test_cubes_partition_the_space(self, workers):
        choices = ["a", "b", "c", "d"]
        cubes = split_cubes(choices, workers)
        assert len(cubes) >= workers or len(cubes) == 2 ** len(choices)
        # every total assignment is consistent with exactly one cube
        for assignment in itertools.product(
            (False, True), repeat=len(choices)
        ):
            point = dict(zip(choices, assignment))
            matching = [
                cube
                for cube in cubes
                if all(point[name] == value for name, value in cube)
            ]
            assert len(matching) == 1

    def test_prefix_capped_by_choice_count(self):
        cubes = split_cubes(["only"], 8)
        assert sorted(cubes) == [(("only", False),), (("only", True),)]


class TestMergeStats:
    def test_numeric_leaves_sum(self):
        target = SolveStats()
        target.incr("solving.models", 2)
        merged = merge_stats(
            target,
            [
                {"solving": {"models": 3}, "summary": {"calls": 1}},
                {"solving": {"models": 5}},
            ],
        )
        assert merged["solving"]["models"] == 10
        assert merged["summary"]["calls"] == 1


class TestShardedAnalyze:
    def test_parallel_report_equals_sequential(self):
        sequential = EpaEngine(chain_model(), REQ).analyze(max_faults=2)
        parallel = EpaEngine(chain_model(), REQ, workers=4).analyze(max_faults=2)
        assert [
            (o.key(), tuple(sorted(o.violated)), o.severity_rank)
            for o in parallel.outcomes
        ] == [
            (o.key(), tuple(sorted(o.violated)), o.severity_rank)
            for o in sequential.outcomes
        ]

    def test_parallel_run_accounts_shards_in_stats(self):
        engine = EpaEngine(chain_model(), REQ, workers=4)
        engine.analyze(max_faults=1)
        stats = engine.statistics
        assert stats["epa"]["parallel"]["shards"] >= 4
        assert stats["epa"]["parallel"]["workers"] == 4
        # worker solving counters were folded back into the parent tree
        assert stats["solving"]["models"] >= 10

    def test_crashed_worker_becomes_epa_error(self, monkeypatch):
        import repro.epa.engine as engine_module

        monkeypatch.setattr(engine_module, "_cube_worker", _die)
        engine = EpaEngine(chain_model(), REQ, workers=4)
        with pytest.raises(EpaError):
            engine.analyze(max_faults=1)


class TestThreadedCallers:
    def test_cegar_verdicts_match_sequential(self):
        engine = EpaEngine(chain_model(), REQ)
        report = engine.analyze(max_faults=2)
        oracle = lambda outcome: outcome.fault_count <= 1
        run = lambda workers: cegar_loop(
            analysis=lambda: report,
            oracle=oracle,
            refiner=lambda spurious: None,
            workers=workers,
        )
        sequential, threaded = run(None), run(4)
        assert [o.key() for o in threaded.confirmed] == [
            o.key() for o in sequential.confirmed
        ]
        assert threaded.converged == sequential.converged

    def test_sensitivity_results_match_sequential(self):
        space = QuantitySpace("risk", ("VL", "L", "M", "H", "VH"))
        table = {
            ("L", "VL"): "VL",
            ("L", "L"): "VL",
            ("L", "M"): "L",
            ("L", "VH"): "M",
        }
        function = lambda lef, lm: table[(lef, lm)]
        kwargs = dict(
            fixed={"lef": "L"},
            uncertain={"lm": ("VL", "L", "M", "VH")},
            outcome_space=space,
        )
        assert one_at_a_time(function, workers=4, **kwargs) == one_at_a_time(
            function, **kwargs
        )


def _sleep_square(payload):  # skewed task cost: (seconds, value)
    seconds, value = payload
    import time

    time.sleep(seconds)
    return value * value


def _die_once(payload):  # crashes the first time only (flag-file trick)
    flag, value = payload
    if os.path.exists(flag):
        return value * value
    with open(flag, "w"):
        pass
    os._exit(1)


def _raise_tagged(value):
    raise KeyError("nope-%d" % value)


class TestWorkStealingPool:
    def test_preserves_submission_order(self):
        from repro.parallel import WorkStealingPool

        pool = WorkStealingPool(4)
        items = list(range(17))
        assert pool.map(_square, items) == [v * v for v in items]
        assert sorted(pool.last_assignments) == items

    def test_degenerate_runs_inline(self):
        from repro.parallel import WorkStealingPool

        pool = WorkStealingPool(1)
        assert pool.map(_square, [2, 3]) == [4, 9]
        assert pool.last_assignments == {0: 0, 1: 0}
        # a single item never forks either, whatever the worker count
        assert WorkStealingPool(8).map(_square, [5]) == [25]

    def test_invalid_worker_count_rejected(self):
        from repro.parallel import WorkStealingPool

        with pytest.raises(ValueError):
            WorkStealingPool(0)

    def test_skewed_tasks_trigger_steals(self):
        from repro.observability.metrics import get_registry
        from repro.parallel import WorkStealingPool

        # home tags are index % workers: even items land on worker 0 and
        # sleep, odd items land on worker 1 and return immediately —
        # worker 1 must steal worker 0's backlog to finish the batch
        items = [(0.2 if i % 2 == 0 else 0.0, i) for i in range(8)]
        steals = get_registry().counter(
            "repro_parallel_steals_total",
            "tasks executed by a worker other than their home worker",
        )
        before = steals.value
        results = WorkStealingPool(2).map(_sleep_square, items)
        assert results == [i * i for i in range(8)]
        assert steals.value > before

    def test_crashed_worker_retries_and_recovers(self, tmp_path):
        from repro.parallel import WorkStealingPool

        # the task kills its worker once, then succeeds on the retry:
        # the pool must respawn the worker and still return every result
        flag = str(tmp_path / "died-once")
        items = [(flag, value) for value in range(4)]
        results = WorkStealingPool(2).map(_die_once, items)
        assert results == [value * value for value in range(4)]

    def test_repeated_crashes_exhaust_attempts(self):
        from repro.parallel import MAX_TASK_ATTEMPTS, WorkStealingPool

        with pytest.raises(ParallelError) as excinfo:
            WorkStealingPool(2).map(_die, list(range(4)))
        assert str(MAX_TASK_ATTEMPTS) in str(excinfo.value)

    def test_function_exception_carries_worker_traceback(self):
        from repro.parallel import WorkStealingPool

        with pytest.raises(KeyError) as excinfo:
            WorkStealingPool(2).map(_raise_tagged, [1, 2, 3])
        cause = excinfo.value.__cause__
        assert isinstance(cause, ParallelError)
        assert cause.worker_traceback is not None
        assert "_raise_tagged" in cause.worker_traceback

    def test_dead_worker_warns_before_the_respawn(self, tmp_path):
        from repro.observability.metrics import get_registry
        from repro.parallel import WorkStealingPool

        stalled = get_registry().counter(
            "repro_worker_stalled_total",
            "pool workers detected stalled (silent past the timeout) or "
            "dead while holding a task",
        )
        respawns = get_registry().counter(
            "repro_parallel_respawns_total",
            "worker processes respawned after dying mid-task",
        )
        stalled_before = stalled.value
        respawns_before = respawns.value
        events = []

        def on_stall(worker, task, silent_s, reason):
            # capture the respawn counter *at warning time*: the health
            # warning must precede the respawn it explains
            events.append((worker, task, reason, respawns.value))

        flag = str(tmp_path / "died-once")
        items = [(flag, value) for value in range(4)]
        results = WorkStealingPool(2, on_stall=on_stall).map(_die_once, items)
        assert results == [value * value for value in range(4)]
        died = [event for event in events if event[2] == "died"]
        assert died, "worker death must raise a health warning"
        assert stalled.value > stalled_before
        assert died[0][3] == respawns_before
        assert respawns.value > respawns_before


class TestParallelByteIdentity:
    """The cube path must stay byte-identical to serial in every mode."""

    def _pairs(self, report):
        return [
            (
                o.key(),
                tuple(sorted(o.violated)),
                o.severity_rank,
                tuple(sorted(o.detected_at)),
                tuple(sorted((c, tuple(sorted(k))) for c, k in o.erroneous.items())),
            )
            for o in report.outcomes
        ]

    def test_restricted_sweep_matches_sequential(self):
        sequential = EpaEngine(chain_model(), REQ).analyze(max_faults=2)
        singles = [
            next(iter(o.active_faults))
            for o in sequential.outcomes
            if o.fault_count == 1
        ]
        restrict = singles[:4]
        serial = EpaEngine(chain_model(), REQ).analyze(
            max_faults=2, restrict_faults=restrict
        )
        parallel = EpaEngine(chain_model(), REQ, workers=4).analyze(
            max_faults=2, restrict_faults=restrict
        )
        assert self._pairs(parallel) == self._pairs(serial)

    def test_with_paths_matches_sequential(self):
        serial = EpaEngine(chain_model(), REQ).analyze(
            max_faults=2, with_paths=True
        )
        parallel = EpaEngine(chain_model(), REQ, workers=4).analyze(
            max_faults=2, with_paths=True
        )
        assert self._pairs(parallel) == self._pairs(serial)
        assert [o.paths for o in parallel.outcomes] == [
            o.paths for o in serial.outcomes
        ]

    def test_cube_mode_matches_sequential(self):
        serial = EpaEngine(chain_model(), REQ).analyze(max_faults=2)
        parallel = EpaEngine(
            chain_model(), REQ, workers=4, parallel_mode="cube"
        ).analyze(max_faults=2)
        assert self._pairs(parallel) == self._pairs(serial)

    def test_portfolio_scenario_verdict_matches_sequential(self):
        serial_engine = EpaEngine(chain_model(), REQ)
        portfolio_engine = EpaEngine(
            chain_model(), REQ, workers=2, parallel_mode="portfolio"
        )
        report = serial_engine.analyze(max_faults=1)
        target = next(
            o for o in report.outcomes if o.fault_count == 1
        ).active_faults
        serial = serial_engine.analyze_scenario(target)
        raced = portfolio_engine.analyze_scenario(target)
        assert raced.violated == serial.violated
        assert raced.severity_rank == serial.severity_rank

    def test_invalid_parallel_mode_rejected(self):
        with pytest.raises(EpaError):
            EpaEngine(chain_model(), REQ, parallel_mode="bogus")

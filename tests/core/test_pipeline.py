"""Integration tests for the 7-phase assessment pipeline (Fig. 1)."""

import pytest

from repro.casestudy import (
    build_system_model,
    refined_system_model,
    static_requirements,
)
from repro.core import AssessmentPipeline, PipelineError
from repro.modeling import ElementType, RelationshipType, SystemModel
from repro.reporting import assessment_report
from repro.security import builtin_catalog


@pytest.fixture(scope="module")
def result():
    pipeline = AssessmentPipeline(
        static_requirements(), builtin_catalog(), max_faults=1
    )
    return pipeline.run(
        build_system_model(), refined_model=refined_system_model()
    )


class TestPhases:
    def test_all_seven_phases_recorded(self, result):
        assert [p.number for p in result.phases] == [1, 2, 3, 4, 5, 6, 7]
        names = [p.name for p in result.phases]
        assert names == [
            "System Model",
            "Candidate System Mutations",
            "Reasoning",
            "Hazard Identification",
            "Model Refinement",
            "Quantitative Risk Analysis",
            "Mitigation Strategy",
        ]

    def test_mutations_injected(self, result):
        assert any(m.origin_kind == "technique" for m in result.mutations)
        assert any(m.origin_kind == "vulnerability" for m in result.mutations)

    def test_hazards_found(self, result):
        assert result.hazards
        assert all(not o.is_safe for o in result.hazards)

    def test_risk_register_covers_hazards(self, result):
        assert len(result.register) == len(result.hazards)
        assert result.register.worst().risk in ("H", "VH")

    def test_mitigation_plan_produced(self, result):
        assert result.plan is not None
        assert result.plan.deployed
        assert result.cost_benefit is not None
        assert result.cost_benefit.worthwhile

    def test_summary_mentions_each_phase(self, result):
        summary = result.summary()
        for phase in result.phases:
            assert phase.name in summary

    def test_report_renders(self, result):
        text = assessment_report(result)
        assert "ASSESSMENT REPORT" in text
        assert "Risk register" in text


class TestValidationGate:
    def _broken_model(self):
        model = SystemModel("broken")
        model.add_element("a", "A", ElementType.NODE)
        model.add_element("b", "B", ElementType.NODE)
        model.add_relationship(
            "a", "b", RelationshipType.PHYSICAL_CONNECTION, check=False
        )
        return model

    def test_validation_errors_stop_the_pipeline(self):
        pipeline = AssessmentPipeline(static_requirements())
        with pytest.raises(PipelineError):
            pipeline.run(self._broken_model())

    def test_validation_gate_can_be_disabled(self):
        pipeline = AssessmentPipeline(
            static_requirements(), fail_on_validation_errors=False
        )
        result = pipeline.run(self._broken_model())
        assert not result.validation.ok


class TestConfiguration:
    def test_without_catalog_skips_mitigation(self):
        pipeline = AssessmentPipeline(static_requirements(), max_faults=1)
        result = pipeline.run(build_system_model())
        assert result.plan is None
        assert "skipped" in result.phases[6].summary

    def test_budget_limits_plan(self):
        pipeline = AssessmentPipeline(
            static_requirements(), builtin_catalog(), max_faults=1, budget=10
        )
        result = pipeline.run(build_system_model())
        assert result.plan is not None
        assert result.plan.cost <= 10

    def test_aspect_models_merged(self):
        pipeline = AssessmentPipeline(static_requirements(), max_faults=1)
        deployment = SystemModel("deployment")
        deployment.add_element(
            "backup_hmi",
            "Backup HMI",
            ElementType.APPLICATION_COMPONENT,
        )
        base = build_system_model()
        base.add_relationship  # base untouched otherwise
        result = pipeline.run(base, aspects=[deployment])
        assert result.model.has_element("backup_hmi")

    def test_active_mitigations_shrink_hazards(self):
        from repro.casestudy import M1, M2

        pipeline = AssessmentPipeline(
            static_requirements(), builtin_catalog(), max_faults=1
        )
        unprotected = pipeline.run(build_system_model())
        protected = pipeline.run(
            build_system_model(),
            active_mitigations={
                "engineering_workstation": ("M0917", "M0949", "M0926")
            },
        )
        assert len(protected.hazards) <= len(unprotected.hazards)

"""Unit tests for behavioural EPA and the RST-extended uncertain EPA."""

import pytest

from repro.epa import (
    BehaviouralEpa,
    EpaReport,
    FaultRef,
    ScenarioOutcome,
    discriminating_faults,
    epa_decision_system,
    refinement_gain,
    uncertain_analysis,
)


def toggle_epa():
    """A minimal dynamic model: a lamp that stays on unless it breaks."""
    epa = BehaviouralEpa()
    epa.add_initial("lamp(on).")
    epa.add_dynamic(
        """
        lamp(off) :- active_fault(lamp, burnout).
        lamp(X) :- prev_lamp(X), not active_fault(lamp, burnout).
        """
    )
    epa.add_fault_mode("lamp", "burnout")
    epa.add_requirement("lit", "G lamp(on)")
    return epa


class TestBehaviouralEpa:
    def test_scenarios_grouped_by_fault_set(self):
        scenarios = toggle_epa().analyze(horizon=2)
        keys = {s.key() for s in scenarios}
        assert keys == {(), ("lamp.burnout",)}

    def test_violation_detected_on_faulty_scenario(self):
        scenarios = toggle_epa().analyze(horizon=2)
        by_key = {s.key(): s for s in scenarios}
        assert by_key[()].violated == frozenset()
        assert by_key[("lamp.burnout",)].violated == {"lit"}

    def test_witnesses(self):
        scenarios = toggle_epa().analyze(horizon=2)
        faulty = [s for s in scenarios if s.faults][0]
        assert faulty.witnesses("lit")
        assert not faulty.witnesses("no_such_requirement")

    def test_mitigation_excludes_scenario(self):
        epa = toggle_epa()
        epa.add_mitigation("burnout", "spare_lamp")
        scenarios = epa.analyze(
            horizon=2, active_mitigations={"lamp": ["spare_lamp"]}
        )
        assert {s.key() for s in scenarios} == {()}

    def test_max_faults_bound(self):
        epa = BehaviouralEpa()
        epa.add_initial("ok.")
        epa.add_fault_mode("a", "f")
        epa.add_fault_mode("b", "f")
        scenarios = epa.analyze(horizon=0, max_faults=1)
        assert all(len(s.faults) <= 1 for s in scenarios)

    def test_repeated_analyze_is_independent(self):
        epa = toggle_epa()
        first = epa.analyze(horizon=1)
        second = epa.analyze(horizon=1)
        assert {s.key() for s in first} == {s.key() for s in second}

    def test_to_report(self):
        epa = toggle_epa()
        scenarios = epa.analyze(horizon=2)
        report = epa.to_report(scenarios)
        assert isinstance(report, EpaReport)
        assert len(report) == 2
        assert len(report.violating("lit")) == 1

    def test_worst_case_over_traces(self):
        """A nondeterministic behaviour violates iff *some* trace does."""
        epa = BehaviouralEpa()
        epa.add_initial("state(ok).")
        epa.add_dynamic(
            """
            { glitch }.
            state(bad) :- glitch, active_fault(core, unstable).
            state(X) :- prev_state(X), not glitch.
            state(ok) :- glitch, not active_fault(core, unstable).
            """
        )
        epa.add_fault_mode("core", "unstable")
        epa.add_requirement("never_bad", "G ~state(bad)")
        scenarios = epa.analyze(horizon=2)
        by_key = {s.key(): s for s in scenarios}
        faulty = by_key[("core.unstable",)]
        # some traces stay ok (glitch never chosen) but the worst case counts
        assert "never_bad" in faulty.violated
        assert by_key[()].violated == frozenset()


def _report(outcomes):
    return EpaReport(outcomes, ["r"])


def _outcome(faults, violated):
    return ScenarioOutcome(
        frozenset(FaultRef(*f.split(".")) for f in faults),
        frozenset(violated),
        {},
    )


class TestUncertainEpa:
    def _and_report(self):
        """Violation requires both f1 and f2 (an AND structure)."""
        return _report(
            [
                _outcome([], []),
                _outcome(["a.f1"], []),
                _outcome(["b.f2"], []),
                _outcome(["a.f1", "b.f2"], ["r"]),
            ]
        )

    def test_fully_observable_is_decidable(self):
        result = uncertain_analysis(self._and_report(), "r")
        assert result.decidable
        assert result.quality == 1.0
        assert len(result.certainly_hazardous) == 1

    def test_hiding_a_fault_creates_boundary(self):
        result = uncertain_analysis(
            self._and_report(), "r", observable=[FaultRef("a", "f1")]
        )
        assert not result.decidable
        # scenarios {f1} and {f1,f2} are indistinguishable
        assert len(result.boundary) == 2
        assert result.quality < 1.0

    def test_certainly_safe_region(self):
        result = uncertain_analysis(
            self._and_report(), "r", observable=[FaultRef("a", "f1")]
        )
        # scenarios without f1 can never violate: certainly safe
        assert ("b.f2",) in result.certainly_safe
        assert () in result.certainly_safe

    def test_decision_system_shape(self):
        system = epa_decision_system(self._and_report(), "r")
        assert set(system.attributes) == {"a.f1", "b.f2"}
        assert len(system) == 4

    def test_discriminating_faults_finds_minimal_reduct(self):
        # with an OR structure, both faults matter
        report = _report(
            [
                _outcome([], []),
                _outcome(["a.f1"], ["r"]),
                _outcome(["b.f2"], ["r"]),
                _outcome(["a.f1", "b.f2"], ["r"]),
            ]
        )
        needed = discriminating_faults(report, "r")
        assert set(needed) == {"a.f1", "b.f2"}

    def test_discriminating_faults_drops_irrelevant(self):
        report = _report(
            [
                _outcome([], []),
                _outcome(["a.f1"], ["r"]),
                _outcome(["b.noise"], []),
                _outcome(["a.f1", "b.noise"], ["r"]),
            ]
        )
        assert discriminating_faults(report, "r") == ["a.f1"]

    def test_refinement_gain(self):
        coarse = uncertain_analysis(
            self._and_report(), "r", observable=[FaultRef("a", "f1")]
        )
        refined = uncertain_analysis(self._and_report(), "r")
        gain = refinement_gain(coarse, refined)
        assert gain["boundary_before"] == 2.0
        assert gain["boundary_after"] == 0.0
        assert gain["quality_gain"] > 0

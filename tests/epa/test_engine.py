"""Unit tests for the topology-level EPA engine."""

import pytest

from repro.epa import (
    EpaEngine,
    EpaError,
    FaultRef,
    StaticRequirement,
    error_kind,
)
from repro.epa.faults import FaultTaxonomyError
from repro.modeling import RelationshipType, SystemModel, standard_cps_library


def chain_model():
    """sensor -> controller -> actuator, plus a masking filter variant."""
    library = standard_cps_library()
    model = SystemModel("chain")
    library.instantiate(model, "sensor", "s")
    library.instantiate(model, "controller", "c")
    library.instantiate(model, "actuator", "v")
    model.add_relationship("s", "c", RelationshipType.FLOW)
    model.add_relationship("c", "v", RelationshipType.FLOW)
    return model


REQ = [
    StaticRequirement("rv", "err(v, K), hazardous_kind(K)", focus="v", magnitude="VH"),
]


class TestFaultTaxonomy:
    def test_error_kinds(self):
        assert error_kind("omission") == "omission"
        assert error_kind("stuck_at_x") == "value"
        assert error_kind("compromised") == "malicious"

    def test_unknown_behaviour_rejected(self):
        with pytest.raises(FaultTaxonomyError):
            error_kind("teleports")

    def test_fault_ref_parse(self):
        ref = FaultRef.parse("pump.stuck_at_open")
        assert ref == FaultRef("pump", "stuck_at_open")
        with pytest.raises(FaultTaxonomyError):
            FaultRef.parse("nodot")


class TestScenarioEnumeration:
    def test_scenario_count_unbounded(self):
        engine = EpaEngine(chain_model(), REQ)
        report = engine.analyze()
        # 9 fault modes -> 2^9 scenarios
        assert len(report) == 2 ** 9

    def test_scenario_count_bounded(self):
        engine = EpaEngine(chain_model(), REQ)
        report = engine.analyze(max_faults=1)
        assert len(report) == 10

    def test_empty_scenario_is_safe(self):
        engine = EpaEngine(chain_model(), REQ)
        report = engine.analyze(max_faults=1)
        nominal = report.outcome_for([])
        assert nominal.is_safe

    def test_upstream_fault_propagates_downstream(self):
        engine = EpaEngine(chain_model(), REQ)
        outcome = engine.analyze_scenario([FaultRef("s", "stuck_at_value")])
        assert outcome.violates("rv")
        assert "v" in outcome.erroneous

    def test_restricted_fault_space(self):
        engine = EpaEngine(chain_model(), REQ)
        report = engine.analyze(
            restrict_faults=[FaultRef("s", "no_signal")],
        )
        assert len(report) == 2  # empty + the single allowed fault

    def test_duplicate_requirement_names_rejected(self):
        with pytest.raises(EpaError):
            EpaEngine(chain_model(), REQ + REQ)


class TestMaskingAndDetection:
    def _masked_model(self):
        library = standard_cps_library()
        model = SystemModel("masked")
        library.instantiate(model, "sensor", "s")
        library.instantiate(model, "filter", "f")
        library.instantiate(model, "actuator", "v")
        model.add_relationship("s", "f", RelationshipType.FLOW)
        model.add_relationship("f", "v", RelationshipType.FLOW)
        return model

    def test_masking_component_absorbs_value_errors(self):
        engine = EpaEngine(self._masked_model(), REQ)
        outcome = engine.analyze_scenario([FaultRef("s", "stuck_at_value")])
        assert outcome.is_safe
        assert "v" not in outcome.erroneous

    def test_malicious_bypasses_masking(self):
        library = standard_cps_library()
        model = self._masked_model()
        library.instantiate(model, "workstation", "ws")
        model.add_relationship("ws", "f", RelationshipType.FLOW)
        engine = EpaEngine(model, REQ)
        outcome = engine.analyze_scenario([FaultRef("ws", "infected")])
        assert outcome.violates("rv")

    def test_detection_raises_detected(self):
        library = standard_cps_library()
        model = SystemModel("d")
        library.instantiate(model, "sensor", "s")
        library.instantiate(model, "hmi", "h")
        model.add_relationship("s", "h", RelationshipType.FLOW)
        engine = EpaEngine(
            model,
            [StaticRequirement("r", "err(h, K), alert_losing_kind(K)", focus="h")],
        )
        outcome = engine.analyze_scenario([FaultRef("s", "stuck_at_value")])
        assert "h" in outcome.detected_at

    def test_silent_detector_does_not_detect(self):
        library = standard_cps_library()
        model = SystemModel("d")
        library.instantiate(model, "sensor", "s")
        library.instantiate(model, "hmi", "h")
        model.add_relationship("s", "h", RelationshipType.FLOW)
        engine = EpaEngine(model, [])
        outcome = engine.analyze_scenario(
            [FaultRef("s", "stuck_at_value"), FaultRef("h", "no_signal")]
        )
        assert "h" not in outcome.detected_at


class TestMitigations:
    def test_fault_level_mitigation_suppresses(self):
        engine = EpaEngine(
            chain_model(),
            REQ,
            fault_mitigations={"compromised": ("m_edr",)},
        )
        unmitigated = engine.analyze(max_faults=1)
        assert any(
            FaultRef("c", "compromised") in o.active_faults
            for o in unmitigated.violating()
        )
        mitigated = engine.analyze(
            active_mitigations={"c": ("m_edr",)}, max_faults=1
        )
        assert not any(
            FaultRef("c", "compromised") in o.active_faults
            for o in mitigated.outcomes
        )

    def test_component_level_mitigation(self):
        engine = EpaEngine(
            chain_model(),
            REQ,
            component_mitigations={("s", "no_signal"): ("m_redundant",)},
        )
        mitigated = engine.analyze(
            active_mitigations={"s": ("m_redundant",)}, max_faults=1
        )
        assert not any(
            FaultRef("s", "no_signal") in o.active_faults
            for o in mitigated.outcomes
        )

    def test_mitigation_on_other_component_has_no_effect(self):
        engine = EpaEngine(
            chain_model(),
            REQ,
            fault_mitigations={"compromised": ("m_edr",)},
        )
        report = engine.analyze(
            active_mitigations={"v": ("m_edr",)}, max_faults=1
        )
        assert any(
            FaultRef("c", "compromised") in o.active_faults
            for o in report.outcomes
        )


class TestReportQueries:
    def _report(self):
        return EpaEngine(chain_model(), REQ).analyze(max_faults=2)

    def test_minimal_violating_are_single_faults_here(self):
        report = self._report()
        minimal = report.minimal_violating("rv")
        assert minimal
        assert all(len(cut) == 1 for cut in minimal)

    def test_single_points_of_failure(self):
        report = self._report()
        spofs = {str(f) for f in report.single_points_of_failure()}
        assert "s.stuck_at_value" in spofs
        assert "c.wrong_output" in spofs

    def test_violation_counts(self):
        report = self._report()
        counts = report.violation_counts()
        assert counts["rv"] == len(report.violating("rv"))

    def test_criticality_ranking(self):
        report = self._report()
        criticality = report.criticality()
        assert set(criticality) <= {"s", "c", "v"}
        ranks = list(criticality.values())
        assert ranks == sorted(ranks, reverse=True)

    def test_outcome_for_unknown_scenario_raises(self):
        report = EpaEngine(chain_model(), REQ).analyze(max_faults=1)
        with pytest.raises(KeyError):
            report.outcome_for(["s.stuck_at_value", "c.crash"])

    def test_paths_extracted(self):
        engine = EpaEngine(chain_model(), REQ)
        outcome = engine.analyze_scenario([FaultRef("s", "stuck_at_value")])
        assert "rv" in outcome.paths
        path = outcome.paths["rv"]
        assert path[0].source == "s"
        assert path[-1].target == "v"

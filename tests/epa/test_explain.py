"""Unit tests for EPA explanation generation."""

import pytest

from repro.casestudy import static_engine
from repro.epa import (
    EpaEngine,
    FaultRef,
    ScenarioOutcome,
    StaticRequirement,
    explain_outcome,
    explain_report,
)
from repro.epa.results import PropagationStep
from repro.modeling import RelationshipType, SystemModel, standard_cps_library


def sample_outcome():
    return ScenarioOutcome(
        frozenset({FaultRef("sensor1", "no_signal")}),
        frozenset({"r1"}),
        {"sensor1": frozenset({"omission"}), "ctrl": frozenset({"omission"})},
        paths={"r1": (PropagationStep("sensor1", "ctrl"),)},
    )


class TestExplainOutcome:
    def test_headline_names_scenario_and_violations(self):
        explanation = explain_outcome(sample_outcome())
        assert "sensor1.no_signal" in explanation.headline
        assert "r1" in explanation.headline

    def test_activation_describes_error_kind(self):
        explanation = explain_outcome(sample_outcome())
        assert any("stops producing output" in e for e in explanation.activation)

    def test_propagation_section(self):
        explanation = explain_outcome(sample_outcome())
        assert any("sensor1 -> ctrl" in e for e in explanation.propagation)
        assert any("ctrl is reached" in e for e in explanation.propagation)

    def test_nominal_scenario(self):
        explanation = explain_outcome(
            ScenarioOutcome(frozenset(), frozenset(), {})
        )
        assert "Nominal" in explanation.headline
        assert not explanation.activation

    def test_tolerated_scenario(self):
        outcome = ScenarioOutcome(
            frozenset({FaultRef("a", "f")}), frozenset(), {}
        )
        explanation = explain_outcome(outcome)
        assert "tolerated" in explanation.headline

    def test_model_provides_readable_names(self):
        library = standard_cps_library()
        model = SystemModel("m")
        library.instantiate(model, "sensor", "sensor1", "Pressure Sensor")
        explanation = explain_outcome(sample_outcome(), model=model)
        assert any("Pressure Sensor" in e for e in explanation.activation)

    def test_requirement_description_included(self):
        requirement = StaticRequirement(
            "r1", "err(x, value)", description="no bad actuation", magnitude="VH"
        )
        explanation = explain_outcome(
            sample_outcome(), requirements=[requirement]
        )
        assert any("no bad actuation" in v for v in explanation.violations)
        assert any("VH" in v for v in explanation.violations)

    def test_defenses_from_mitigation_map(self):
        explanation = explain_outcome(
            sample_outcome(), mitigations={"no_signal": ("redundant_sensor",)}
        )
        assert any("redundant_sensor" in d for d in explanation.defenses)

    def test_no_known_defense_fallback(self):
        explanation = explain_outcome(sample_outcome())
        assert any("no catalogued mitigation" in d for d in explanation.defenses)

    def test_text_rendering_contains_sections(self):
        text = explain_outcome(sample_outcome()).text()
        for section in ("Activated faults:", "Propagation:", "Consequences:"):
            assert section in text


class TestExplainReport:
    def test_explains_case_study_hazards(self):
        engine = static_engine()
        report = engine.analyze(max_faults=1, with_paths=True)
        explanations = explain_report(engine, report.violating(), limit=3)
        assert len(explanations) == 3
        assert all(e.headline for e in explanations)

    def test_engine_mitigations_surface_in_defenses(self):
        engine = static_engine()
        report = engine.analyze(max_faults=1, with_paths=True)
        infected = [
            o
            for o in report.violating()
            if any(f.fault == "infected" for f in o.active_faults)
        ]
        explanation = explain_report(engine, infected, limit=1)[0]
        assert any("m1_user_training" in d for d in explanation.defenses)

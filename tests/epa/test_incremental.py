"""Differential validation of the incremental EPA engine.

An incremental :class:`~repro.epa.EpaEngine` keeps one persistent
multi-shot control per ``max_faults`` bound and answers deployment /
restriction / single-scenario queries by flipping externals and
assumptions.  These tests require every such answer to be identical to
the fresh-control path (``incremental=False``) that regrounds per call
— on the three-component chain model, the water-tank case study, and
the deployment sweeps of ``epa.optimal``.  EPA reports sort outcomes
canonically, so full report equality (not just set equality) is the
bar.
"""

import pytest

from repro.epa import EpaEngine, FaultRef, StaticRequirement
from repro.epa.optimal import attack_cost_of_mitigation
from repro.modeling import RelationshipType, SystemModel, standard_cps_library

REQ = [
    StaticRequirement("rv", "err(v, K), hazardous_kind(K)", focus="v", magnitude="VH"),
]

#: chain faults that a (made-up) training mitigation can suppress
MITIGATIONS = {
    "no_signal": ("shielding",),
    "compromised": ("hardening", "monitoring"),
    "stuck_at_open": ("maintenance",),
}


def chain_model():
    """sensor -> controller -> actuator (9 fault modes, 512 scenarios)."""
    library = standard_cps_library()
    model = SystemModel("chain")
    library.instantiate(model, "sensor", "s")
    library.instantiate(model, "controller", "c")
    library.instantiate(model, "actuator", "v")
    model.add_relationship("s", "c", RelationshipType.FLOW)
    model.add_relationship("c", "v", RelationshipType.FLOW)
    return model


def engines():
    """An incremental engine and its fresh-path twin."""
    incremental = EpaEngine(
        chain_model(), REQ, fault_mitigations=MITIGATIONS, incremental=True
    )
    fresh = EpaEngine(
        chain_model(), REQ, fault_mitigations=MITIGATIONS, incremental=False
    )
    return incremental, fresh


def fingerprint(report):
    return [
        (outcome.key(), tuple(sorted(outcome.violated)), outcome.severity_rank)
        for outcome in report.outcomes
    ]


class TestChainDifferential:
    @pytest.mark.parametrize("max_faults", [0, 1, 2])
    def test_plain_enumeration(self, max_faults):
        incremental, fresh = engines()
        assert fingerprint(
            incremental.analyze(max_faults=max_faults)
        ) == fingerprint(fresh.analyze(max_faults=max_faults))

    def test_deployment_sweep_on_one_engine(self):
        incremental, fresh = engines()
        deployments = [
            {},
            {"s": ("shielding",)},
            {"c": ("hardening",)},
            {"s": ("shielding",), "c": ("monitoring",), "v": ("maintenance",)},
            {},  # back to empty: externals fully retracted
        ]
        for deployment in deployments:
            assert fingerprint(
                incremental.analyze(
                    active_mitigations=deployment, max_faults=2
                )
            ) == fingerprint(
                fresh.analyze(active_mitigations=deployment, max_faults=2)
            )
        multishot = incremental.statistics["solving"]["multishot"]
        assert multishot["solves"] == len(deployments)
        assert multishot["reground_avoided"] == len(deployments) - 1

    def test_restrict_faults(self):
        incremental, fresh = engines()
        restrict = [FaultRef("s", "drift"), FaultRef("c", "crash")]
        assert fingerprint(
            incremental.analyze(restrict_faults=restrict)
        ) == fingerprint(fresh.analyze(restrict_faults=restrict))
        # the restriction must not leak into the next unrestricted call
        assert len(incremental.analyze(max_faults=1)) == 10

    def test_analyze_scenario(self):
        incremental, fresh = engines()
        scenarios = [
            (),
            (FaultRef("s", "no_signal"),),
            (FaultRef("c", "compromised"), FaultRef("v", "stuck_at_open")),
        ]
        for faults in scenarios:
            ours = incremental.analyze_scenario(faults)
            reference = fresh.analyze_scenario(faults)
            assert ours.key() == reference.key()
            assert ours.violated == reference.violated

    def test_analyze_scenario_respects_mitigations(self):
        incremental, fresh = engines()
        deployment = {"s": ("shielding",)}
        faults = (FaultRef("s", "no_signal"),)
        ours = incremental.analyze_scenario(faults, active_mitigations=deployment)
        reference = fresh.analyze_scenario(faults, active_mitigations=deployment)
        # the suppressed fault stays inactive on both paths
        assert ours.key() == reference.key() == ()

    def test_limit_falls_back_without_poisoning(self):
        incremental, _ = engines()
        assert len(incremental.analyze(max_faults=1, limit=3)) == 3
        assert len(incremental.analyze(max_faults=1)) == 10


class TestWaterTankDifferential:
    """The paper's case study, bounded to keep its 2^22 space at bay."""

    def test_bounded_enumeration(self):
        from repro.casestudy import build_system_model, static_requirements

        incremental = EpaEngine(
            build_system_model(), static_requirements(), incremental=True
        )
        fresh = EpaEngine(
            build_system_model(), static_requirements(), incremental=False
        )
        assert fingerprint(incremental.analyze(max_faults=1)) == fingerprint(
            fresh.analyze(max_faults=1)
        )


class TestAttackCostSweep:
    def test_multishot_matches_fresh_and_parallel(self):
        deployments = [
            {},
            {"s": ("shielding",)},
            {"c": ("hardening",)},
            {"s": ("shielding",), "v": ("maintenance",)},
        ]
        incremental, _ = engines()
        multishot = attack_cost_of_mitigation(incremental, "rv", deployments)
        legacy_engine, _ = engines()
        legacy = attack_cost_of_mitigation(
            legacy_engine, "rv", deployments, multishot=False
        )
        parallel_engine, _ = engines()
        parallel = attack_cost_of_mitigation(
            parallel_engine, "rv", deployments, workers=2
        )
        assert multishot == legacy == parallel
        assert set(multishot) == set(range(len(deployments)))

"""Unit tests for the optimal-scenario queries (Sec. IV-D)."""

import pytest

from repro.epa import (
    EpaEngine,
    FaultRef,
    OptimalQueryError,
    StaticRequirement,
    attack_cost_of_mitigation,
    cheapest_attack,
    most_severe_attack,
)
from repro.modeling import RelationshipType, SystemModel, standard_cps_library


def chain():
    library = standard_cps_library()
    model = SystemModel("chain")
    library.instantiate(model, "sensor", "s")
    library.instantiate(model, "controller", "c")
    library.instantiate(model, "actuator", "v")
    model.add_relationship("s", "c", RelationshipType.FLOW)
    model.add_relationship("c", "v", RelationshipType.FLOW)
    return model


REQ = [
    StaticRequirement(
        "rv", "err(v, K), hazardous_kind(K)", focus="v", magnitude="VH"
    ),
    StaticRequirement(
        "ro", "err(v, omission)", focus="v", magnitude="L"
    ),
]


def engine(**kwargs):
    return EpaEngine(chain(), REQ, **kwargs)


class TestCheapestAttack:
    def test_minimizes_declared_costs(self):
        costs = {
            FaultRef("s", "stuck_at_value"): 10,
            FaultRef("s", "drift"): 2,
            FaultRef("c", "wrong_output"): 10,
            FaultRef("c", "compromised"): 10,
            FaultRef("v", "stuck_at_open"): 10,
            FaultRef("v", "stuck_at_closed"): 10,
            FaultRef("v", "slow_response"): 10,
        }
        result = cheapest_attack(engine(), "rv", costs)
        assert result.objective == 2
        assert FaultRef("s", "drift") in result.outcome.active_faults

    def test_single_fault_suffices(self):
        result = cheapest_attack(engine(), "rv")
        assert result.outcome.fault_count == 1
        assert result.outcome.violates("rv")

    def test_unknown_requirement_rejected(self):
        with pytest.raises(OptimalQueryError):
            cheapest_attack(engine(), "nonexistent")

    def test_mitigation_changes_the_optimum(self):
        costs = self._full_costs(default=5)
        costs[FaultRef("c", "compromised")] = 1  # the cheap path
        eng = engine(fault_mitigations={"compromised": ("edr",)})
        unprotected = cheapest_attack(eng, "rv", costs)
        assert unprotected.objective == 1
        protected = cheapest_attack(
            eng, "rv", costs, active_mitigations={"c": ("edr",)}
        )
        assert protected.objective > 1

    @staticmethod
    def _full_costs(default=5):
        return {
            FaultRef(component, fault): default
            for component, faults in (
                ("s", ("no_signal", "stuck_at_value", "drift")),
                ("c", ("crash", "wrong_output", "compromised")),
                ("v", ("stuck_at_open", "stuck_at_closed", "slow_response")),
            )
            for fault in faults
        }

    def test_infeasible_when_everything_mitigated(self):
        """A single fully-masked target: no attack can violate."""
        library = standard_cps_library()
        model = SystemModel("m")
        library.instantiate(model, "filter", "f")
        library.instantiate(model, "actuator", "v")
        model.add_relationship("f", "v", RelationshipType.FLOW)
        eng = EpaEngine(
            model,
            [StaticRequirement("rv", "err(v, K), hazardous_kind(K)", focus="v")],
            fault_mitigations={
                "stuck_at_open": ("m",),
                "stuck_at_closed": ("m",),
                "slow_response": ("m",),
            },
        )
        with pytest.raises(OptimalQueryError):
            cheapest_attack(
                eng,
                "rv",
                active_mitigations={"v": ("m",)},
            )

    def test_undeclared_costs_default_to_one(self):
        result = cheapest_attack(engine(), "rv", costs={})
        assert result.objective == 1


class TestMostSevereAttack:
    def test_prefers_high_magnitude_requirement(self):
        result = most_severe_attack(engine(), max_faults=1)
        # violating rv (VH) dominates violating ro (L)
        assert result.outcome.violates("rv")

    def test_respects_fault_bound(self):
        result = most_severe_attack(engine(), max_faults=1)
        assert result.outcome.fault_count <= 1

    def test_two_faults_can_do_more(self):
        single = most_severe_attack(engine(), max_faults=1)
        double = most_severe_attack(engine(), max_faults=2)
        assert double.objective >= single.objective
        # with two faults both requirements fall (value + omission)
        assert double.outcome.violates("rv")
        assert double.outcome.violates("ro")


class TestAttackCostOfMitigation:
    def test_costs_reported_per_deployment(self):
        costs = TestCheapestAttack._full_costs(default=7)
        costs[FaultRef("c", "compromised")] = 1
        eng = engine(fault_mitigations={"compromised": ("edr",)})
        results = attack_cost_of_mitigation(
            eng,
            "rv",
            [{}, {"c": ("edr",)}],
            costs,
        )
        assert results[0] == 1
        assert results[1] is not None and results[1] > 1

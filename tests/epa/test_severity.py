"""Tests for scenario severity bookkeeping (the Sec. II-C cost metric)."""

import pytest

from repro.epa import EpaEngine, FaultRef, StaticRequirement
from repro.modeling import RelationshipType, SystemModel, standard_cps_library


def model():
    library = standard_cps_library()
    m = SystemModel("m")
    library.instantiate(m, "sensor", "s")
    library.instantiate(m, "actuator", "v")
    m.add_relationship("s", "v", RelationshipType.FLOW, check=False)
    return m


REQ = [StaticRequirement("r", "err(v, K), hazardous_kind(K)", focus="v")]


class TestSeverityRanks:
    def test_no_faults_rank_zero(self):
        engine = EpaEngine(model(), REQ)
        outcome = engine.analyze_scenario([])
        assert outcome.severity_rank == 0

    def test_minor_fault_low_rank(self):
        engine = EpaEngine(model(), REQ)
        # sensor drift is declared 'minor' in the library -> ORA L -> 2
        outcome = engine.analyze_scenario([FaultRef("s", "drift")])
        assert outcome.severity_rank == 2

    def test_critical_fault_high_rank(self):
        engine = EpaEngine(model(), REQ)
        # actuator stuck-at is 'critical' -> VH -> 5
        outcome = engine.analyze_scenario([FaultRef("v", "stuck_at_open")])
        assert outcome.severity_rank == 5

    def test_worst_active_fault_dominates(self):
        engine = EpaEngine(model(), REQ)
        outcome = engine.analyze_scenario(
            [FaultRef("s", "drift"), FaultRef("v", "stuck_at_open")]
        )
        assert outcome.severity_rank == 5

    def test_severity_monotone_under_fault_addition(self):
        engine = EpaEngine(model(), REQ)
        single = engine.analyze_scenario([FaultRef("s", "drift")])
        double = engine.analyze_scenario(
            [FaultRef("s", "drift"), FaultRef("s", "no_signal")]
        )
        assert double.severity_rank >= single.severity_rank

    def test_extra_mutation_severity_respected(self):
        from repro.security import CandidateMutation

        mutation = CandidateMutation("s", "zero_day", "compromised", "vulnerability", "CVE-X", "VH")
        engine = EpaEngine(model(), REQ, extra_mutations=(mutation,))
        outcome = engine.analyze_scenario([FaultRef("s", "zero_day")])
        assert outcome.severity_rank == 5

"""Tests for the streaming sweep spine (``docs/streaming.md``).

Four contracts:

* **byte identity** — the streamed aggregate (sequential probe path,
  sharded cube path in both stream modes, deployments, restrictions)
  is byte-for-byte identical to folding the materialized
  :class:`~repro.epa.EpaReport`;
* **bounded residency** — :meth:`~repro.epa.EpaEngine.analyze_stream`
  never accumulates outcomes: at any point only a handful of yielded
  objects are alive;
* **checkpoint/resume** — a killed sweep resumes from its token to the
  same bytes, and a token from a different configuration is refused;
* **channel plumbing** — :func:`repro.parallel.emit_partial` and the
  pool's ``on_partial``/``on_retry``/``on_result`` callbacks behave
  identically in-process and across worker processes, and drop stale
  partials from crashed attempts.
"""

import gc
import os
import weakref

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asp.cubes import (
    DEFAULT_CUBE_FACTOR,
    generate_cubes,
    resolve_cube_factor,
)
from repro.asp.serialize import SerializeError
from repro.epa import (
    EpaEngine,
    EpaError,
    FaultRef,
    ScenarioAggregate,
    StaticRequirement,
    read_checkpoint,
    write_checkpoint,
)
from repro.epa.aggregate import AggregateError
from repro.epa.results import ScenarioOutcome
from repro.modeling import RelationshipType, SystemModel, standard_cps_library
from repro.parallel import WorkStealingPool, emit_partial

REQ = [
    StaticRequirement(
        "rv", "err(v, K), hazardous_kind(K)", focus="v", magnitude="VH"
    ),
]


def chain_model():
    library = standard_cps_library()
    model = SystemModel("chain")
    library.instantiate(model, "sensor", "s")
    library.instantiate(model, "controller", "c")
    library.instantiate(model, "actuator", "v")
    model.add_relationship("s", "c", RelationshipType.FLOW)
    model.add_relationship("c", "v", RelationshipType.FLOW)
    return model


def _reference(engine, **kwargs):
    """The materialized fold every streamed variant must reproduce."""
    magnitudes = {r.name: r.magnitude for r in REQ}
    return engine.analyze(**kwargs).to_aggregate(magnitudes).dumps()


class TestStreamedByteIdentity:
    def test_sequential_stream_matches_materialized(self):
        reference = _reference(EpaEngine(chain_model(), REQ), max_faults=2)
        streamed = EpaEngine(chain_model(), REQ).aggregate(max_faults=2)
        assert streamed.dumps() == reference

    def test_analyze_stream_fold_matches(self):
        engine = EpaEngine(chain_model(), REQ)
        reference = _reference(EpaEngine(chain_model(), REQ), max_faults=2)
        folded = ScenarioAggregate.from_outcomes(
            engine.analyze_stream(max_faults=2),
            [r.name for r in REQ],
            {r.name: r.magnitude for r in REQ},
        )
        assert folded.dumps() == reference

    @pytest.mark.parametrize("stream_mode", ["aggregate", "models"])
    def test_sharded_stream_matches(self, stream_mode):
        reference = _reference(EpaEngine(chain_model(), REQ), max_faults=2)
        sharded = EpaEngine(chain_model(), REQ, workers=2).aggregate(
            max_faults=2, stream_mode=stream_mode, chunk_size=3
        )
        assert sharded.dumps() == reference

    def test_deployment_and_restriction_match(self):
        deployment = {"s": ("redundancy",)}
        restrict = [FaultRef("s", "no_signal"), FaultRef("c", "crash")]
        kwargs = dict(
            active_mitigations=deployment,
            max_faults=2,
            restrict_faults=restrict,
        )
        reference = _reference(EpaEngine(chain_model(), REQ), **kwargs)
        sequential = EpaEngine(chain_model(), REQ).aggregate(**kwargs)
        sharded = EpaEngine(chain_model(), REQ, workers=2).aggregate(**kwargs)
        assert sequential.dumps() == reference
        assert sharded.dumps() == reference

    def test_unbounded_sweep_matches(self):
        reference = _reference(EpaEngine(chain_model(), REQ))
        streamed = EpaEngine(chain_model(), REQ).aggregate()
        assert streamed.scenarios == 2 ** 9
        assert streamed.dumps() == reference

    def test_invalid_stream_mode_rejected(self):
        with pytest.raises(EpaError):
            EpaEngine(chain_model(), REQ).aggregate(stream_mode="firehose")

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2 ** 16),
        tiers=st.integers(min_value=2, max_value=3),
        components=st.integers(min_value=1, max_value=3),
        modes=st.integers(min_value=1, max_value=2),
        max_faults=st.integers(min_value=1, max_value=2),
    )
    def test_property_streamed_matches_on_seeded_fleets(
        self, seed, tiers, components, modes, max_faults
    ):
        """Property over seeded fleet models: for any spec in the
        sampled range, the streamed aggregate reproduces the
        materialized-report fold byte for byte."""
        from repro.security.fleet import FleetSpec, fleet_engine

        spec = FleetSpec(
            seed=seed,
            tiers=tiers,
            components_per_tier=components,
            fault_modes_per_component=modes,
            max_faults=max_faults,
        )
        engine = fleet_engine(spec)
        magnitudes = {r.name: r.magnitude for r in engine.requirements}
        reference = ScenarioAggregate.from_report(
            engine.analyze(max_faults=max_faults), magnitudes
        )
        assert reference.scenarios == spec.scenario_count(max_faults)
        streamed = fleet_engine(spec).aggregate(max_faults=max_faults)
        assert streamed.dumps() == reference.dumps()


class TestBoundedResidency:
    def test_analyze_stream_keeps_few_outcomes_alive(self):
        engine = EpaEngine(chain_model(), REQ)
        refs = []
        count = 0
        for outcome in engine.analyze_stream():
            assert isinstance(outcome, ScenarioOutcome)
            refs.append(weakref.ref(outcome))
            count += 1
            if count % 64 == 0:
                gc.collect()
                alive = sum(1 for ref in refs if ref() is not None)
                # nothing in the pipeline may retain the yielded
                # outcomes: only the loop variable itself stays alive
                assert alive <= 4
        assert count == 2 ** 9

    def test_early_close_stops_cleanly(self):
        engine = EpaEngine(chain_model(), REQ)
        stream = engine.analyze_stream(max_faults=2)
        first = next(stream)
        stream.close()
        assert isinstance(first, ScenarioOutcome)
        # the engine remains usable after an abandoned stream
        assert engine.aggregate(max_faults=1).scenarios == 10


class TestAggregateFold:
    def test_merge_rejects_mismatched_requirements(self):
        left = ScenarioAggregate(["a"], {})
        right = ScenarioAggregate(["b"], {})
        with pytest.raises(AggregateError):
            left.merge(right)

    def test_minimal_sets_are_an_antichain(self):
        aggregate = ScenarioAggregate(["rv"], {})
        single = frozenset([FaultRef("s", "no_signal")])
        pair = frozenset(
            [FaultRef("s", "no_signal"), FaultRef("c", "crash")]
        )
        for faults in (pair, single, pair):
            aggregate.add(
                ScenarioOutcome(faults, frozenset(["rv"]), {}, frozenset())
            )
        assert aggregate.minimal_sets() == [single]
        assert aggregate.single_points_of_failure() == sorted(single, key=str)

    def test_truncation_cap_sets_flag(self):
        aggregate = ScenarioAggregate(["rv"], {}, max_minimal_sets=2)
        for name in ("one", "two", "three"):
            faults = frozenset([FaultRef(name, "crash")])
            aggregate.add(
                ScenarioOutcome(faults, frozenset(["rv"]), {}, frozenset())
            )
        assert len(aggregate.minimal_violating) == 2
        assert aggregate.minimal_truncated

    def test_roundtrip_and_equality(self):
        engine = EpaEngine(chain_model(), REQ)
        aggregate = engine.aggregate(max_faults=2)
        clone = ScenarioAggregate.loads(aggregate.dumps())
        assert clone == aggregate
        assert clone.to_dict() == aggregate.to_dict()
        assert "scenarios analyzed" in clone.summary()


class TestCheckpointResume:
    def test_token_roundtrip(self, tmp_path):
        path = str(tmp_path / "token.ckpt")
        aggregate = ScenarioAggregate(["rv"], {"rv": "VH"})
        write_checkpoint(path, "cafe" * 16, [3, 1, 2], aggregate.dumps())
        state = read_checkpoint(path)
        assert state.digest == "cafe" * 16
        assert list(state.completed) == [1, 2, 3]
        assert ScenarioAggregate.loads(state.aggregate) == aggregate

    def test_torn_token_rejected(self, tmp_path):
        path = tmp_path / "torn.ckpt"
        aggregate = ScenarioAggregate(["rv"], {})
        write_checkpoint(str(path), "00" * 32, [0], aggregate.dumps())
        path.write_bytes(path.read_bytes()[:-3])
        with pytest.raises(SerializeError):
            read_checkpoint(str(path))

    def test_kill_and_resume_reproduces_bytes(self, tmp_path, monkeypatch):
        import repro.epa.engine as engine_module

        path = str(tmp_path / "sweep.ckpt")
        reference = EpaEngine(chain_model(), REQ).aggregate(max_faults=2)

        real_write = engine_module.write_checkpoint
        calls = []

        def dying_write(target, digest, completed, aggregate):
            written = real_write(target, digest, completed, aggregate)
            calls.append(len(completed))
            if len(calls) == 2:
                raise KeyboardInterrupt("simulated kill")
            return written

        monkeypatch.setattr(engine_module, "write_checkpoint", dying_write)
        with pytest.raises(KeyboardInterrupt):
            EpaEngine(chain_model(), REQ).aggregate(
                max_faults=2, checkpoint=path, checkpoint_every=1
            )
        monkeypatch.setattr(engine_module, "write_checkpoint", real_write)
        assert calls == [1, 2]

        resumed = EpaEngine(chain_model(), REQ).aggregate(
            max_faults=2, checkpoint=path, checkpoint_every=1
        )
        assert resumed.dumps() == reference.dumps()
        stats = read_checkpoint(path)
        assert ScenarioAggregate.loads(stats.aggregate) == reference

    def test_completed_token_short_circuits(self, tmp_path):
        path = str(tmp_path / "done.ckpt")
        reference = EpaEngine(chain_model(), REQ).aggregate(
            max_faults=2, checkpoint=path
        )
        again = EpaEngine(chain_model(), REQ).aggregate(
            max_faults=2, checkpoint=path
        )
        assert again.dumps() == reference.dumps()

    def test_mismatched_configuration_refused(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        EpaEngine(chain_model(), REQ).aggregate(max_faults=1, checkpoint=path)
        with pytest.raises(EpaError):
            EpaEngine(chain_model(), REQ).aggregate(
                max_faults=2, checkpoint=path
            )


class TestCubeFactor:
    def test_default_and_explicit(self):
        assert resolve_cube_factor() == DEFAULT_CUBE_FACTOR
        assert resolve_cube_factor(7) == 7
        with pytest.raises(ValueError):
            resolve_cube_factor(0)

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CUBE_FACTOR", "9")
        assert resolve_cube_factor() == 9
        assert resolve_cube_factor(2) == 2  # explicit beats the env
        monkeypatch.setenv("REPRO_CUBE_FACTOR", "banana")
        with pytest.raises(ValueError):
            resolve_cube_factor()

    def test_generate_cubes_scales_with_factor(self):
        engine = EpaEngine(chain_model(), REQ)
        control = engine._base_control({})
        from repro.epa.rules import scenario_choice

        control.add(scenario_choice(2))
        ground = control.ground()
        from repro.asp import atom

        atoms = [
            atom("active_fault", ref.component, ref.fault)
            for ref in engine._potential_faults({})
        ]
        wide = generate_cubes(ground, atoms, 2, oversubscribe=4)
        narrow = generate_cubes(ground, atoms, 2, oversubscribe=1)
        assert len(wide) == 8  # 2 workers x factor 4
        assert len(narrow) == 2


def _emit_three(value):
    """Ship two partials then return (module-level: workers pickle it)."""
    emit_partial(("part", value, 1))
    emit_partial(("part", value, 2))
    return value * 10


def _emit_or_die(item):
    """Emit a partial, then crash on the first attempt of item 1.

    The sentinel file makes the crash happen exactly once across the
    retried worker processes: the first attempt creates it and dies,
    the retry finds it and succeeds.
    """
    value, die_path = item
    emit_partial(("part", value))
    if value == 1:
        try:
            with open(die_path, "x"):
                pass
        except FileExistsError:
            pass
        else:
            os._exit(1)
    return value


class TestResultChannel:
    def test_emit_partial_without_channel_is_noop(self):
        assert emit_partial(("orphan",)) is False

    def test_in_process_channel(self):
        pool = WorkStealingPool(1)
        partials = []
        order = []
        results = pool.map(
            _emit_three,
            [5],
            on_partial=lambda index, value: partials.append((index, value)),
            on_result=lambda index, value: order.append((index, value)),
        )
        assert results == [50]
        assert partials == [(0, ("part", 5, 1)), (0, ("part", 5, 2))]
        assert order == [(0, 50)]

    def test_subprocess_channel(self):
        pool = WorkStealingPool(2)
        partials = {}
        done = []
        results = pool.map(
            _emit_three,
            [0, 1, 2, 3],
            on_partial=lambda index, value: partials.setdefault(
                index, []
            ).append(value),
            on_result=lambda index, value: done.append(index),
        )
        assert results == [0, 10, 20, 30]
        assert sorted(done) == [0, 1, 2, 3]
        for index in range(4):
            assert partials[index] == [
                ("part", index, 1),
                ("part", index, 2),
            ]

    def test_crash_retries_and_reports(self, tmp_path):
        pool = WorkStealingPool(2)
        retried = []
        buffers = {}
        die_path = str(tmp_path / "died.once")

        def on_partial(index, value):
            buffers.setdefault(index, []).append(value)

        def on_retry(index):
            # the client contract: a retry invalidates every partial
            # buffered for that task (docs/streaming.md)
            retried.append(index)
            buffers.pop(index, None)

        results = pool.map(
            _emit_or_die,
            [(value, die_path) for value in range(4)],
            on_partial=on_partial,
            on_retry=on_retry,
        )
        assert results == [0, 1, 2, 3]
        # item 1 crashed at least once and was retried
        assert 1 in retried
        # only the successful attempt's partial survives the clears
        assert buffers[1] == [("part", 1)]

"""Unit tests for the fault-tree baseline."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.fta import (
    AND,
    OR,
    BasicEvent,
    FaultTree,
    FaultTreeError,
    Gate,
    KofN,
    from_cut_sets,
)


def paper_tree():
    """OR(F4, AND(F2, F3)) — overflow-without-alert, case-study style."""
    return FaultTree(
        OR(
            BasicEvent("f4", "M"),
            AND(BasicEvent("f2", "M"), BasicEvent("f3", "M")),
        ),
        "overflow_unalerted",
    )


class TestEvaluation:
    def test_or_gate(self):
        tree = FaultTree(OR(BasicEvent("a"), BasicEvent("b")))
        assert tree.occurs({"a"})
        assert tree.occurs({"b"})
        assert not tree.occurs(set())

    def test_and_gate(self):
        tree = FaultTree(AND(BasicEvent("a"), BasicEvent("b")))
        assert tree.occurs({"a", "b"})
        assert not tree.occurs({"a"})

    def test_kofn_gate(self):
        tree = FaultTree(
            KofN(2, BasicEvent("a"), BasicEvent("b"), BasicEvent("c"))
        )
        assert tree.occurs({"a", "c"})
        assert not tree.occurs({"b"})

    def test_nested(self):
        tree = paper_tree()
        assert tree.occurs({"f4"})
        assert tree.occurs({"f2", "f3"})
        assert not tree.occurs({"f2"})

    def test_invalid_gate_kind(self):
        with pytest.raises(FaultTreeError):
            Gate("xor", (BasicEvent("a"),))

    def test_empty_gate_rejected(self):
        with pytest.raises(FaultTreeError):
            Gate("and", ())

    def test_kofn_bounds_validated(self):
        with pytest.raises(FaultTreeError):
            KofN(4, BasicEvent("a"), BasicEvent("b"))

    def test_bad_likelihood_rejected(self):
        with pytest.raises(Exception):
            BasicEvent("a", "XXL")

    def test_conflicting_event_definitions_rejected(self):
        tree = FaultTree(
            OR(BasicEvent("a", "L"), BasicEvent("a", "H"))
        )
        with pytest.raises(FaultTreeError):
            tree.basic_events()


class TestCutSets:
    def test_paper_tree_cut_sets(self):
        cuts = paper_tree().cut_sets()
        assert set(cuts) == {frozenset({"f4"}), frozenset({"f2", "f3"})}

    def test_minimality(self):
        # a alone suffices, so {a, b} must not appear
        tree = FaultTree(OR(BasicEvent("a"), AND(BasicEvent("a"), BasicEvent("b"))))
        assert tree.cut_sets() == [frozenset({"a"})]

    def test_kofn_cut_sets(self):
        tree = FaultTree(
            KofN(2, BasicEvent("a"), BasicEvent("b"), BasicEvent("c"))
        )
        assert len(tree.cut_sets()) == 3
        assert all(len(c) == 2 for c in tree.cut_sets())

    def test_cut_set_count_blowup(self):
        """AND of ORs multiplies: the classic FTA explosion."""
        gates = [
            OR(BasicEvent("x%d_0" % i), BasicEvent("x%d_1" % i))
            for i in range(6)
        ]
        tree = FaultTree(AND(*gates))
        assert len(tree.cut_sets()) == 2 ** 6

    def test_path_sets_dual(self):
        tree = paper_tree()
        paths = set(tree.path_sets())
        assert paths == {frozenset({"f4", "f2"}), frozenset({"f4", "f3"})}

    def test_cut_sets_characterize_occurrence(self):
        """top occurs iff some minimal cut set is fully active."""
        tree = paper_tree()
        cuts = tree.cut_sets()
        events = [e.name for e in tree.basic_events()]
        for mask in itertools.product([False, True], repeat=len(events)):
            active = {e for e, on in zip(events, mask) if on}
            expected = any(cut <= active for cut in cuts)
            assert tree.occurs(active) == expected


class TestQualitativeLikelihood:
    def test_or_takes_max(self):
        tree = FaultTree(OR(BasicEvent("a", "L"), BasicEvent("b", "H")))
        assert tree.qualitative_likelihood() == "H"

    def test_and_penalizes(self):
        tree = FaultTree(AND(BasicEvent("a", "M"), BasicEvent("b", "M")))
        assert tree.qualitative_likelihood() == "L"

    def test_triple_and_rarer_than_double(self):
        """The paper's S7-vs-S5 argument in FTA form."""
        double = FaultTree(AND(BasicEvent("a", "M"), BasicEvent("b", "M")))
        triple = FaultTree(
            AND(BasicEvent("a", "M"), BasicEvent("b", "M"), BasicEvent("c", "M"))
        )
        from repro.qualitative import five_level_scale

        scale = five_level_scale()
        assert scale.index(triple.qualitative_likelihood()) < scale.index(
            double.qualitative_likelihood()
        )

    def test_saturation_at_bottom(self):
        tree = FaultTree(
            AND(*[BasicEvent("e%d" % i, "VL") for i in range(4)])
        )
        assert tree.qualitative_likelihood() == "VL"


class TestImportance:
    def test_single_point_of_failure_has_high_importance(self):
        tree = paper_tree()
        importance = tree.importance()
        assert importance["f4"] == pytest.approx(0.5)
        assert importance["f2"] == pytest.approx(0.5)

    def test_event_in_every_cut_set(self):
        tree = FaultTree(
            OR(AND(BasicEvent("k"), BasicEvent("a")), AND(BasicEvent("k"), BasicEvent("b")))
        )
        assert tree.importance()["k"] == 1.0


class TestFromCutSets:
    def test_roundtrip(self):
        cuts = [{"a"}, {"b", "c"}]
        tree = from_cut_sets(cuts, {"a": "H", "b": "M", "c": "M"})
        assert set(tree.cut_sets()) == {frozenset({"a"}), frozenset({"b", "c"})}
        assert tree.qualitative_likelihood() == "H"

    def test_single_cut(self):
        tree = from_cut_sets([{"x"}])
        assert tree.occurs({"x"})

    def test_empty_inputs_rejected(self):
        with pytest.raises(FaultTreeError):
            from_cut_sets([])
        with pytest.raises(FaultTreeError):
            from_cut_sets([set()])


@given(
    st.lists(
        st.sets(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=3),
        min_size=1,
        max_size=5,
    )
)
def test_from_cut_sets_preserves_semantics(cuts):
    """Occurrence of the rebuilt tree equals the cut-set condition."""
    tree = from_cut_sets(cuts)
    for mask in itertools.product([False, True], repeat=4):
        active = {e for e, on in zip("abcd", mask) if on}
        expected = any(set(cut) <= active for cut in cuts)
        assert tree.occurs(active) == expected

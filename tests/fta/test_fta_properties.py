"""Property-based tests on random fault trees."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.fta import BasicEvent, FaultTree, Gate

EVENTS = ["e0", "e1", "e2", "e3"]


@st.composite
def random_trees(draw, depth=0):
    """Random gate trees over a small event alphabet."""
    if depth >= 2 or draw(st.booleans()):
        name = draw(st.sampled_from(EVENTS))
        return BasicEvent(name, "M")
    kind = draw(st.sampled_from(["and", "or", "kofn"]))
    size = draw(st.integers(min_value=1, max_value=3))
    children = tuple(
        draw(random_trees(depth=depth + 1)) for _ in range(size)
    )
    if kind == "kofn":
        k = draw(st.integers(min_value=1, max_value=len(children)))
        return Gate("kofn", children, k=k)
    return Gate(kind, children)


@settings(max_examples=120, deadline=None)
@given(random_trees())
def test_cut_sets_characterize_occurrence(node):
    """For every subset of events: top occurs iff a cut set is active."""
    tree = FaultTree(node)
    cuts = tree.cut_sets()
    for mask in itertools.product([False, True], repeat=len(EVENTS)):
        active = {e for e, on in zip(EVENTS, mask) if on}
        assert tree.occurs(active) == any(cut <= active for cut in cuts)


@settings(max_examples=120, deadline=None)
@given(random_trees())
def test_cut_sets_are_minimal_and_unique(node):
    cuts = FaultTree(node).cut_sets()
    assert len(set(cuts)) == len(cuts)
    for a in cuts:
        for b in cuts:
            if a is not b:
                assert not a <= b


@settings(max_examples=80, deadline=None)
@given(random_trees())
def test_path_sets_dual_to_cut_sets(node):
    """Disabling a full path set prevents the top event; any hitting set
    of all path sets that is disabled blocks every cut set."""
    tree = FaultTree(node)
    cuts = tree.cut_sets()
    paths = tree.path_sets()
    # blocking any path set (making all its events healthy) while all
    # other events fail must prevent the top event
    all_events = set(EVENTS)
    for path in paths:
        active = all_events - set(path)
        assert not tree.occurs(active)
    # conversely, if no path set is fully healthy, the top occurs
    if cuts:
        for mask in itertools.product([False, True], repeat=len(EVENTS)):
            active = {e for e, on in zip(EVENTS, mask) if on}
            healthy = all_events - active
            if not any(set(p) <= healthy for p in paths):
                assert tree.occurs(active)


@settings(max_examples=80, deadline=None)
@given(random_trees())
def test_importance_fractions_bounded(node):
    importance = FaultTree(node).importance()
    assert all(0.0 <= value <= 1.0 for value in importance.values())

"""Tests for the Sec. VI drill-down workflow."""

import pytest

from repro.casestudy import (
    build_system_model,
    static_engine,
    static_requirements,
    workstation_refinement,
)
from repro.hierarchy import drill_down, hot_spots


@pytest.fixture(scope="module")
def coarse_report():
    return static_engine().analyze(max_faults=1)


REFINEMENTS = {"engineering_workstation": workstation_refinement()}


class TestHotSpots:
    def test_ranked_by_involvement(self, coarse_report):
        spots = hot_spots(coarse_report)
        counts = [s.violating_scenarios for s in spots]
        assert counts == sorted(counts, reverse=True)

    def test_refinable_flag(self, coarse_report):
        spots = hot_spots(coarse_report, REFINEMENTS)
        by_name = {s.component: s for s in spots}
        assert by_name["engineering_workstation"].refinable
        assert not by_name["input_valve"].refinable

    def test_limit(self, coarse_report):
        assert len(hot_spots(coarse_report, limit=2)) == 2


class TestDrillDown:
    def _run(self, coarse_report, limit=10):
        return drill_down(
            build_system_model(),
            static_requirements(),
            coarse_report,
            REFINEMENTS,
            fault_mitigations={"infected": ("m1", "m2")},
            limit=limit,
        )

    def test_refinement_applied_to_hot_spot(self, coarse_report):
        result = self._run(coarse_report)
        assert result.refined_model.has_element("email_client")

    def test_refined_report_exposes_attack_chain_details(self, coarse_report):
        """The refined model's violating scenarios name the inner
        infection-chain components the coarse model could not express
        (they confirm — not contradict — the coarse workstation hazard)."""
        result = self._run(coarse_report)
        fine_components = {
            fault.component
            for outcome in result.refined_report.violating()
            for fault in outcome.active_faults
        }
        assert fine_components & {
            "email_client",
            "browser",
            "infected_computer",
        }
        # and those fine scenarios count as confirmation of the coarse one
        assert ("engineering_workstation.infected",) in result.confirmed

    def test_coarse_hazards_confirmed(self, coarse_report):
        """Pure-OT hazards (stuck valves) survive refinement untouched."""
        result = self._run(coarse_report)
        confirmed_faults = {key for key in result.confirmed}
        assert ("output_valve.stuck_at_closed",) in confirmed_faults

    def test_limit_respects_ranking(self, coarse_report):
        """With a tiny limit, lower-ranked refinable components are not
        refined."""
        result = self._run(coarse_report, limit=1)
        # the top hot spot is an unrefinable valve, so nothing is applied
        assert not result.refined_model.has_element("email_client")

    def test_summary_renders(self, coarse_report):
        summary = self._run(coarse_report).summary()
        assert "hot spots" in summary
        assert "confirmed" in summary

"""Unit tests for asset refinement, threat levels, Fig. 3 and CEGAR."""

import pytest

from repro.casestudy import (
    build_system_model,
    refined_system_model,
    static_requirements,
    workstation_refinement,
)
from repro.epa import EpaEngine, EpaReport, FaultRef, ScenarioOutcome, StaticRequirement
from repro.hierarchy import (
    CegarError,
    HierarchicalEvaluation,
    RefinementError,
    RefinementSpec,
    ThreatLevel,
    aspect_mutations,
    cegar_loop,
    oracle_from_detailed_report,
    refine,
    refinement_children,
    is_refined,
    threat_model,
)
from repro.modeling import ElementType, RelationshipType, SystemModel
from repro.security import builtin_catalog


class TestAssetRefinement:
    def test_refined_model_contains_submodel(self):
        refined = refined_system_model()
        for identifier in ("email_client", "browser", "infected_computer"):
            assert refined.has_element(identifier)

    def test_composite_keeps_identity_without_faults(self):
        refined = refined_system_model()
        assert is_refined(refined, "engineering_workstation")
        assert not refined.element("engineering_workstation").properties.get(
            "fault_modes"
        )

    def test_composition_children(self):
        refined = refined_system_model()
        children = refinement_children(refined, "engineering_workstation")
        assert children == ["browser", "email_client", "infected_computer"]

    def test_external_relationships_rewired(self):
        refined = refined_system_model()
        # outgoing flows now leave from the exit component
        targets = {
            r.target for r in refined.outgoing("infected_computer")
        }
        assert "in_valve_controller" in targets
        assert "out_valve_controller" in targets

    def test_original_model_unchanged(self):
        original = build_system_model()
        refine(original, workstation_refinement())
        assert not original.has_element("email_client")

    def test_unknown_target_rejected(self):
        spec = workstation_refinement()
        bad = RefinementSpec("ghost", spec.submodel, spec.entry, spec.exit)
        with pytest.raises(RefinementError):
            refine(build_system_model(), bad)

    def test_bad_boundary_rejected(self):
        spec = workstation_refinement()
        bad = RefinementSpec(spec.target, spec.submodel, "ghost", spec.exit)
        with pytest.raises(RefinementError):
            refine(build_system_model(), bad)

    def test_id_collision_rejected(self):
        submodel = SystemModel("sub")
        submodel.add_element("water_tank", "Clash", ElementType.NODE)
        spec = RefinementSpec(
            "engineering_workstation", submodel, "water_tank", "water_tank"
        )
        with pytest.raises(RefinementError):
            refine(build_system_model(), spec)

    def test_attack_path_through_refined_chain(self):
        """Fig. 4: the infection path E-mail Client -> Browser ->
        Infected Computer -> valve controllers exists after refinement."""
        refined = refined_system_model()
        graph = refined.propagation_graph()
        import networkx as nx

        # the Fig. 4 chain is a real propagation path...
        assert graph.has_edge("email_client", "browser")
        assert graph.has_edge("browser", "infected_computer")
        assert graph.has_edge("infected_computer", "in_valve_controller")
        # ...and the physical process is reachable from the e-mail client
        assert nx.has_path(graph, "email_client", "input_valve")


class TestThreatLevels:
    def test_aspect_mutations_cover_components(self):
        mutations = aspect_mutations(build_system_model())
        components = {m.component for m in mutations}
        assert "water_tank" in components
        aspects = {m.origin for m in mutations}
        assert aspects == {"availability", "reliability", "timeliness", "integrity"}

    def test_level1_has_only_generic_faults(self):
        threats = threat_model(build_system_model(), ThreatLevel.ASPECTS)
        assert all(m.fault.startswith("loss_of_") for m in threats.mutations)

    def test_level2_contains_concrete_faults(self):
        threats = threat_model(
            build_system_model(),
            ThreatLevel.FAULTS_AND_VULNERABILITIES,
            builtin_catalog(),
        )
        pairs = {(m.component, m.fault) for m in threats.mutations}
        assert ("output_valve", "stuck_at_closed") in pairs
        assert any(m.origin_kind == "technique" for m in threats.mutations)

    def test_level3_adds_mitigations(self):
        threats = threat_model(
            build_system_model(), ThreatLevel.MITIGATIONS, builtin_catalog()
        )
        assert threats.mitigations
        assert any("M0917" in ms for ms in threats.mitigations.values())

    def test_level3_requires_catalog(self):
        with pytest.raises(ValueError):
            threat_model(build_system_model(), ThreatLevel.MITIGATIONS)


class TestHierarchicalEvaluation:
    def test_fig3_matrix(self):
        evaluation = HierarchicalEvaluation(
            static_requirements(), builtin_catalog(), max_faults=1
        )
        cells = evaluation.evaluate_matrix(
            build_system_model(), refined_system_model()
        )
        assert [c.focus for c in cells] == [
            "topology-based propagation",
            "detailed propagation analysis",
            "mitigation plan",
        ]
        assert [c.threat_level for c in cells] == [
            ThreatLevel.ASPECTS,
            ThreatLevel.FAULTS_AND_VULNERABILITIES,
            ThreatLevel.MITIGATIONS,
        ]

    def test_topology_finds_hazards_early(self):
        evaluation = HierarchicalEvaluation(
            static_requirements(), max_faults=1
        )
        cell = evaluation.topology_based(build_system_model())
        assert cell.violating_count > 0

    def test_mitigation_plan_cell_has_plan(self):
        evaluation = HierarchicalEvaluation(
            static_requirements(), builtin_catalog(), max_faults=1
        )
        cell = evaluation.mitigation_plan(refined_system_model())
        assert cell.plan is not None

    def test_mitigation_plan_requires_catalog(self):
        evaluation = HierarchicalEvaluation(static_requirements())
        with pytest.raises(ValueError):
            evaluation.mitigation_plan(build_system_model())


def _outcome(faults, violated):
    return ScenarioOutcome(
        frozenset(FaultRef(*f.split(".")) for f in faults),
        frozenset(violated),
        {},
    )


class TestCegarLoop:
    def test_spurious_eliminated_by_refinement(self):
        coarse = EpaReport(
            [_outcome(["a.f"], ["r"]), _outcome(["b.f"], ["r"])], ["r"]
        )
        detailed = EpaReport([_outcome(["a.f"], ["r"])], ["r"])

        oracle = oracle_from_detailed_report(detailed)
        result = cegar_loop(
            analysis=lambda: coarse,
            oracle=oracle,
            refiner=lambda spurious: (lambda: detailed),
        )
        assert result.converged
        assert len(result.confirmed) == 1
        assert result.spurious_eliminated() == 1

    def test_no_spurious_converges_immediately(self):
        report = EpaReport([_outcome(["a.f"], ["r"])], ["r"])
        result = cegar_loop(
            analysis=lambda: report,
            oracle=lambda outcome: True,
            refiner=lambda spurious: None,
        )
        assert result.converged
        assert len(result.iterations) == 1

    def test_refinement_exhausted(self):
        report = EpaReport([_outcome(["a.f"], ["r"])], ["r"])
        result = cegar_loop(
            analysis=lambda: report,
            oracle=lambda outcome: False,
            refiner=lambda spurious: None,
        )
        assert not result.converged
        assert result.confirmed == []

    def test_confirmed_hazards_never_lost(self):
        """The soundness invariant: confirmations accumulate."""
        coarse = EpaReport(
            [_outcome(["a.f"], ["r"]), _outcome(["b.f"], ["r"])], ["r"]
        )
        empty = EpaReport([], ["r"])
        oracle_calls = []

        def oracle(outcome):
            oracle_calls.append(outcome.key())
            return outcome.key() == (("a.f"),)

        result = cegar_loop(
            analysis=lambda: coarse,
            oracle=oracle,
            refiner=lambda spurious: (lambda: empty),
        )
        assert [o.key() for o in result.confirmed] == [("a.f",)]

    def test_max_iterations_validated(self):
        with pytest.raises(CegarError):
            cegar_loop(
                analysis=lambda: EpaReport([], []),
                oracle=lambda o: True,
                refiner=lambda s: None,
                max_iterations=0,
            )

    def test_oracle_from_detailed_report_subset_logic(self):
        detailed = EpaReport([_outcome(["a.f1", "b.f2"], ["r"])], ["r"])
        oracle = oracle_from_detailed_report(detailed)
        # a coarse candidate on {a, b} is confirmed
        assert oracle(_outcome(["a.loss_of_integrity", "b.loss_of_integrity"], ["r"]))
        # a candidate on {c} is spurious
        assert not oracle(_outcome(["c.loss_of_integrity"], ["r"]))

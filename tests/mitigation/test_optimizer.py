"""Unit and property tests for mitigation optimization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mitigation import (
    AttackCostModel,
    BlockingProblem,
    FailureCostModel,
    MitigationCost,
    OptimizationError,
    compare_plans,
    evaluate_plan,
    most_efficient,
    optimize_asp,
    optimize_exhaustive,
    optimize_greedy,
    plan_phases,
    risk_weight,
)


def cover_problem():
    problem = BlockingProblem()
    problem.add_mitigation("m1", 4)
    problem.add_mitigation("m2", 3)
    problem.add_mitigation("m3", 2)
    problem.add_scenario("s1", ["m1"], "H")
    problem.add_scenario("s2", ["m1", "m2"], "M")
    problem.add_scenario("s3", ["m2", "m3"], "VH")
    return problem


class TestCosts:
    def test_mitigation_tco(self):
        cost = MitigationCost(10, 2)
        assert cost.total(0) == 10
        assert cost.total(3) == 16
        with pytest.raises(ValueError):
            cost.total(-1)

    def test_failure_cost_geometric(self):
        model = FailureCostModel()
        assert model.cost("VH") > model.cost("H") > model.cost("M")

    def test_failure_cost_custom_mapping_validated(self):
        with pytest.raises(ValueError):
            FailureCostModel({"VL": 1})

    def test_attack_cost_chain(self):
        model = AttackCostModel()
        assert model.chain_cost(["L", "H"]) == 26

    def test_risk_weight_order(self):
        assert risk_weight("VH") > risk_weight("M") > risk_weight("VL")
        with pytest.raises(ValueError):
            risk_weight("XL")


class TestExactOptimization:
    def test_asp_matches_exhaustive(self):
        problem = cover_problem()
        asp_plan = optimize_asp(problem)
        exhaustive_plan = optimize_exhaustive(problem)
        assert asp_plan.cost == exhaustive_plan.cost
        assert asp_plan.complete

    def test_optimal_cover(self):
        plan = optimize_asp(cover_problem())
        # m1 covers s1,s2; m3 covers s3 -> cost 6 (vs m1+m2 = 7)
        assert plan.deployed == frozenset({"m1", "m3"})
        assert plan.cost == 6

    def test_unblockable_scenarios_tolerated(self):
        problem = cover_problem()
        problem.add_scenario("s_none", [], "VH")
        plan = optimize_asp(problem)
        assert "s_none" in plan.unblocked
        assert plan.blocked == frozenset({"s1", "s2", "s3"})

    def test_unknown_blocker_rejected(self):
        problem = BlockingProblem()
        problem.add_scenario("s", ["ghost"])
        with pytest.raises(OptimizationError):
            optimize_asp(problem)

    def test_empty_problem(self):
        plan = optimize_asp(BlockingProblem())
        assert plan.deployed == frozenset()
        assert plan.cost == 0


class TestBudgetedOptimization:
    def test_budget_limits_spending(self):
        plan = optimize_asp(cover_problem(), budget=4)
        assert plan.cost <= 4

    def test_budget_prioritizes_risk(self):
        plan = optimize_asp(cover_problem(), budget=3)
        # within 3: m2 (cost 3) blocks s2+s3 (weight 9+81) beats m3
        # (blocks s3 only) and m1 is too central but costs 4
        assert "m2" in plan.deployed
        assert "s3" in plan.blocked

    def test_zero_budget_blocks_nothing(self):
        plan = optimize_asp(cover_problem(), budget=0)
        assert plan.deployed == frozenset()
        assert plan.blocked == frozenset()

    def test_budget_matches_exhaustive(self):
        for budget in (0, 2, 3, 5, 7, 9):
            asp_plan = optimize_asp(cover_problem(), budget=budget)
            exhaustive_plan = optimize_exhaustive(cover_problem(), budget=budget)
            assert (
                asp_plan.residual_risk_weight
                == exhaustive_plan.residual_risk_weight
            ), budget


class TestGreedy:
    def test_greedy_covers_everything(self):
        plan = optimize_greedy(cover_problem())
        assert plan.complete

    def test_greedy_never_cheaper_than_exact(self):
        problem = cover_problem()
        assert optimize_greedy(problem).cost >= optimize_asp(problem).cost

    def test_greedy_with_budget(self):
        plan = optimize_greedy(cover_problem(), budget=3)
        assert plan.cost <= 3

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 30))
    def test_greedy_deterministic(self, _seed):
        problem = cover_problem()
        assert optimize_greedy(problem).deployed == optimize_greedy(problem).deployed


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=5),
    st.lists(
        st.sets(st.integers(min_value=0, max_value=4), min_size=1, max_size=3),
        min_size=1,
        max_size=6,
    ),
)
def test_asp_optimum_equals_bruteforce(costs, scenario_blocker_indices):
    """Exact ASP optimization agrees with brute force on random covers."""
    problem = BlockingProblem()
    for index, cost in enumerate(costs):
        problem.add_mitigation("m%d" % index, cost)
    for index, blockers in enumerate(scenario_blocker_indices):
        names = ["m%d" % b for b in blockers if b < len(costs)]
        problem.add_scenario("s%d" % index, names, "M")
    asp_plan = optimize_asp(problem)
    exhaustive_plan = optimize_exhaustive(problem)
    assert asp_plan.cost == exhaustive_plan.cost
    assert asp_plan.residual_risk_weight == exhaustive_plan.residual_risk_weight


class TestMultiPhasePlanning:
    def test_phases_reduce_risk_monotonically(self):
        plan = plan_phases(cover_problem(), [3, 4, 5])
        trajectory = plan.risk_trajectory()
        assert all(b <= a for a, b in zip(trajectory, trajectory[1:]))

    def test_final_phase_completes_cover(self):
        plan = plan_phases(cover_problem(), [3, 10])
        assert plan.final_residual_risk_weight == 0

    def test_total_cost_sums_phases(self):
        plan = plan_phases(cover_problem(), [3, 10])
        assert plan.total_cost == sum(p.spent for p in plan.phases)

    def test_deployed_union(self):
        plan = plan_phases(cover_problem(), [3, 10])
        assert plan.deployed >= {"m2"}

    def test_greedy_variant(self):
        plan = plan_phases(cover_problem(), [10], use_greedy=True)
        assert plan.final_residual_risk_weight == 0

    def test_empty_budgets_rejected(self):
        with pytest.raises(OptimizationError):
            plan_phases(cover_problem(), [])

    def test_negative_budget_rejected(self):
        with pytest.raises(OptimizationError):
            plan_phases(cover_problem(), [-1])


class TestCostBenefit:
    def test_worthwhile_plan(self):
        plan = optimize_asp(cover_problem())
        result = evaluate_plan(plan, {"s1": "H", "s2": "M", "s3": "VH"})
        assert result.net_benefit > 0
        assert result.worthwhile
        assert result.residual_loss == 0

    def test_tco_periods(self):
        plan = optimize_asp(cover_problem())
        tco = {
            "m1": MitigationCost(4, 10),
            "m3": MitigationCost(2, 10),
        }
        cheap = evaluate_plan(plan, {"s1": "H"}, mitigation_tco=tco, periods=0)
        expensive = evaluate_plan(plan, {"s1": "H"}, mitigation_tco=tco, periods=5)
        assert expensive.plan_cost > cheap.plan_cost

    def test_compare_and_pick_most_efficient(self):
        problem = cover_problem()
        plans = {
            "exact": optimize_asp(problem),
            "greedy": optimize_greedy(problem),
        }
        results = compare_plans(plans, {"s1": "H", "s2": "M", "s3": "VH"})
        best = most_efficient(results)
        assert best in plans
        assert results[best].net_benefit == max(
            r.net_benefit for r in results.values()
        )

    def test_most_efficient_empty(self):
        assert most_efficient({}) is None

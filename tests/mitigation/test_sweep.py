"""Differential tests for the multi-shot budget sweep.

:func:`~repro.mitigation.sweep_budgets` answers every candidate budget
on one persistent control by flipping a ``budget_active`` external per
solve.  The fresh baseline is a loop of
:func:`~repro.mitigation.optimize_asp` calls.  The two paths (and the
process-pool path) may break ties between equally-optimal deployments
differently, so the bar is *objective* equality — same residual risk
weight and same cost at every budget — plus feasibility of each plan.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mitigation import (
    BlockingProblem,
    OptimizationError,
    optimize_asp,
    sweep_budgets,
)
from repro.observability import SolveStats


def cover_problem():
    problem = BlockingProblem()
    problem.add_mitigation("m1", 4)
    problem.add_mitigation("m2", 3)
    problem.add_mitigation("m3", 2)
    problem.add_scenario("s1", ["m1"], "H")
    problem.add_scenario("s2", ["m1", "m2"], "M")
    problem.add_scenario("s3", ["m2", "m3"], "VH")
    return problem


def objectives(plans):
    return {
        budget: (plan.residual_risk_weight, plan.cost)
        for budget, plan in plans.items()
    }


def assert_feasible(problem, plans):
    for budget, plan in plans.items():
        assert plan.cost <= budget
        assert plan.deployed <= set(problem.mitigation_costs)
        # blocked/unblocked must be consistent with the deployment
        for scenario, blockers in problem.scenario_blockers.items():
            expected = bool(blockers & plan.deployed)
            assert (scenario in plan.blocked) == expected


class TestBudgetSweep:
    BUDGETS = [0, 2, 5, 7, 100]

    def test_multishot_matches_fresh_loop(self):
        problem = cover_problem()
        multishot = sweep_budgets(problem, self.BUDGETS)
        fresh = sweep_budgets(problem, self.BUDGETS, multishot=False)
        assert objectives(multishot) == objectives(fresh)
        assert_feasible(problem, multishot)
        assert_feasible(problem, fresh)

    def test_parallel_matches_fresh_loop(self):
        problem = cover_problem()
        parallel = sweep_budgets(problem, self.BUDGETS, workers=2)
        fresh = sweep_budgets(problem, self.BUDGETS, multishot=False)
        assert objectives(parallel) == objectives(fresh)

    def test_duplicate_budgets_collapse(self):
        plans = sweep_budgets(cover_problem(), [5, 5, 5, 2])
        assert sorted(plans) == [2, 5]

    def test_unconstrained_budget_matches_optimize_asp(self):
        problem = cover_problem()
        unconstrained = optimize_asp(problem)
        swept = sweep_budgets(problem, [100])[100]
        assert swept.residual_risk_weight == unconstrained.residual_risk_weight
        assert swept.cost == unconstrained.cost

    def test_sweep_records_multishot_stats(self):
        stats = SolveStats()
        sweep_budgets(cover_problem(), self.BUDGETS, stats=stats)
        assert stats["mitigation"]["budget_sweeps"] == 1
        multishot = stats["solving"]["multishot"]
        assert multishot["solves"] == len(set(self.BUDGETS))
        assert multishot["reground_avoided"] == len(set(self.BUDGETS)) - 1

    def test_validation_errors_still_raise(self):
        problem = BlockingProblem()
        problem.add_scenario("s1", ["ghost"])
        with pytest.raises(OptimizationError):
            sweep_budgets(problem, [1, 2])


@st.composite
def random_problems(draw):
    n_mitigations = draw(st.integers(min_value=1, max_value=4))
    names = ["m%d" % i for i in range(n_mitigations)]
    problem = BlockingProblem()
    for name in names:
        problem.add_mitigation(
            name, draw(st.integers(min_value=1, max_value=5))
        )
    n_scenarios = draw(st.integers(min_value=1, max_value=4))
    for index in range(n_scenarios):
        blockers = draw(
            st.lists(st.sampled_from(names), unique=True, max_size=n_mitigations)
        )
        risk = draw(st.sampled_from(["VL", "L", "M", "H", "VH"]))
        problem.add_scenario("s%d" % index, blockers, risk)
    budgets = draw(
        st.lists(
            st.integers(min_value=0, max_value=12), min_size=1, max_size=3
        )
    )
    return problem, budgets


@settings(max_examples=25, deadline=None)
@given(random_problems())
def test_random_sweeps_match_fresh_loop(case):
    problem, budgets = case
    multishot = sweep_budgets(problem, budgets)
    fresh = sweep_budgets(problem, budgets, multishot=False)
    assert objectives(multishot) == objectives(fresh)
    assert_feasible(problem, multishot)

"""Unit tests for component libraries, XML I/O, validation and ASP facts."""

import pytest

from repro.asp import atom
from repro.modeling import (
    ArchimateIOError,
    ComponentTypeLibrary,
    ElementType,
    FaultModeSpec,
    ModelError,
    PropagationSpec,
    RelationshipType,
    Severity,
    SystemModel,
    from_xml,
    model_facts,
    standard_cps_library,
    to_asp_text,
    to_control,
    to_xml,
    validate,
)


class TestLibrary:
    def test_standard_library_types(self):
        library = standard_cps_library()
        for name in ("sensor", "actuator", "controller", "hmi", "workstation"):
            assert name in library

    def test_instantiate_carries_fault_modes(self):
        library = standard_cps_library()
        model = SystemModel("m")
        element = library.instantiate(model, "actuator", "valve")
        names = {f["name"] for f in element.properties["fault_modes"]}
        assert "stuck_at_open" in names and "stuck_at_closed" in names

    def test_instantiate_merges_properties(self):
        library = standard_cps_library()
        model = SystemModel("m")
        element = library.instantiate(
            model, "sensor", "s1", properties={"exposure": "public"}
        )
        assert element.properties["exposure"] == "public"
        assert element.properties["component_type"] == "sensor"

    def test_unknown_type_raises(self):
        library = standard_cps_library()
        with pytest.raises(ModelError):
            library.instantiate(SystemModel("m"), "quantum_router", "q1")

    def test_duplicate_registration_rejected(self):
        library = standard_cps_library()
        with pytest.raises(ModelError):
            library.define("sensor", ElementType.DEVICE)

    def test_propagation_spec_validation(self):
        with pytest.raises(ValueError):
            PropagationSpec("teleporting")

    def test_fault_mode_lookup(self):
        library = standard_cps_library()
        sensor = library.get("sensor")
        assert sensor.fault_mode("no_signal").behaviour == "omission"
        with pytest.raises(KeyError):
            sensor.fault_mode("explodes")

    def test_masking_component_type(self):
        library = standard_cps_library()
        model = SystemModel("m")
        element = library.instantiate(model, "filter", "f1")
        assert element.properties["propagation_mode"] == "masking"


class TestArchimateIO:
    def _roundtrip_model(self):
        library = standard_cps_library()
        model = SystemModel("roundtrip")
        library.instantiate(model, "sensor", "s1", "Sensor One")
        library.instantiate(model, "controller", "c1")
        model.add_relationship(
            "s1", "c1", RelationshipType.FLOW, properties={"protocol": "opc-ua"}
        )
        return model

    def test_roundtrip_preserves_structure(self):
        original = self._roundtrip_model()
        restored = from_xml(to_xml(original))
        assert len(restored.elements) == len(original.elements)
        assert len(restored.relationships) == len(original.relationships)
        assert restored.element("s1").name == "Sensor One"

    def test_roundtrip_preserves_properties(self):
        restored = from_xml(to_xml(self._roundtrip_model()))
        assert restored.element("s1").properties["component_type"] == "sensor"
        assert (
            restored.relationships[0].properties["protocol"] == "opc-ua"
        )
        fault_modes = restored.element("s1").properties["fault_modes"]
        assert fault_modes[0]["behaviour"] == "omission"

    def test_malformed_xml_rejected(self):
        with pytest.raises(ArchimateIOError):
            from_xml("<model><unclosed></model>")

    def test_unknown_element_type_rejected(self):
        text = """
        <model identifier="x"><elements>
          <element identifier="a" type="flux_capacitor"><name>A</name></element>
        </elements></model>
        """
        with pytest.raises(ArchimateIOError):
            from_xml(text)

    def test_missing_relationship_endpoint_rejected(self):
        text = """
        <model identifier="x"><elements>
          <element identifier="a" type="node"><name>A</name></element>
        </elements><relationships>
          <relationship identifier="r" source="a" target="ghost" type="flow"/>
        </relationships></model>
        """
        with pytest.raises(ArchimateIOError):
            from_xml(text)


class TestValidation:
    def test_clean_model(self):
        library = standard_cps_library()
        model = SystemModel("m")
        library.instantiate(model, "sensor", "s1")
        library.instantiate(model, "controller", "c1")
        model.add_relationship("s1", "c1", RelationshipType.FLOW)
        report = validate(model)
        assert report.ok

    def test_isolated_component_warned(self):
        library = standard_cps_library()
        model = SystemModel("m")
        library.instantiate(model, "sensor", "s1")
        report = validate(model)
        assert any(d.code == "ISOLATED" for d in report.warnings)

    def test_disallowed_relationship_is_error(self):
        model = SystemModel("m")
        model.add_element("a", "A", ElementType.NODE)
        model.add_element("b", "B", ElementType.NODE)
        model.add_relationship(
            "a", "b", RelationshipType.PHYSICAL_CONNECTION, check=False
        )
        report = validate(model)
        assert not report.ok
        assert report.errors[0].code == "REL_TYPE"

    def test_missing_fault_modes_is_info(self):
        model = SystemModel("m")
        model.add_element("a", "A", ElementType.NODE)
        model.add_element("b", "B", ElementType.NODE)
        model.add_relationship("a", "b", RelationshipType.FLOW)
        report = validate(model)
        assert any(d.code == "NO_FAULT_MODES" for d in report)
        assert report.ok  # info does not fail validation

    def test_self_loop_warned(self):
        model = SystemModel("m")
        model.add_element("a", "A", ElementType.NODE)
        model.add_relationship("a", "a", RelationshipType.FLOW)
        report = validate(model)
        assert any(d.code == "SELF_LOOP" for d in report.warnings)


class TestAspFacts:
    def _model(self):
        library = standard_cps_library()
        model = SystemModel("m")
        library.instantiate(model, "sensor", "s1")
        library.instantiate(model, "controller", "c1")
        model.add_relationship("s1", "c1", RelationshipType.FLOW)
        return model

    def test_component_facts(self):
        facts = model_facts(self._model())
        predicates = {p for p, _ in facts}
        assert {
            "component",
            "component_type",
            "component_layer",
            "fault_mode",
            "fault_behaviour",
            "propagates",
            "relation",
        } <= predicates

    def test_asp_text_is_parseable(self):
        control = to_control(self._model())
        model = control.first_model()
        assert model is not None
        assert model.contains(atom("component", "s1"))
        assert model.contains(atom("propagates", "s1", "c1"))

    def test_fault_mode_facts_join(self):
        control = to_control(
            self._model(),
            rules="has_omission(C) :- fault_mode(C, F), "
            "fault_behaviour(C, F, omission).",
        )
        model = control.first_model()
        assert model.contains(atom("has_omission", "s1"))

"""Unit tests for the system model and metamodel."""

import pytest

from repro.modeling import (
    ElementType,
    Layer,
    ModelError,
    RelationshipType,
    SystemModel,
    propagation_directions,
    relationship_allowed,
)


def small_model():
    model = SystemModel("m")
    model.add_element("a", "A", ElementType.NODE)
    model.add_element("b", "B", ElementType.NODE)
    model.add_element("tank", "Tank", ElementType.EQUIPMENT)
    model.add_element("pipe", "Pipe", ElementType.DISTRIBUTION_NETWORK)
    return model


class TestElements:
    def test_add_and_get(self):
        model = small_model()
        assert model.element("a").name == "A"
        assert model.element("a").layer is Layer.TECHNOLOGY

    def test_duplicate_id_rejected(self):
        model = small_model()
        with pytest.raises(ModelError):
            model.add_element("a", "again", ElementType.NODE)

    def test_unknown_element_raises(self):
        with pytest.raises(ModelError):
            small_model().element("zzz")

    def test_elements_of_type_and_layer(self):
        model = small_model()
        assert len(model.elements_of_type(ElementType.NODE)) == 2
        assert len(model.elements_in_layer(Layer.PHYSICAL)) == 2

    def test_element_type_from_label(self):
        assert ElementType.from_label("equipment") is ElementType.EQUIPMENT
        with pytest.raises(KeyError):
            ElementType.from_label("not_a_type")

    def test_remove_element_drops_relationships(self):
        model = small_model()
        model.add_relationship("a", "b", RelationshipType.FLOW)
        model.remove_element("a")
        assert not model.has_element("a")
        assert model.relationships == []


class TestRelationships:
    def test_flow_between_nodes(self):
        model = small_model()
        rel = model.add_relationship("a", "b", RelationshipType.FLOW)
        assert rel in model.outgoing("a")
        assert rel in model.incoming("b")
        assert model.neighbors("a") == {"b"}

    def test_dangling_endpoint_rejected(self):
        model = small_model()
        with pytest.raises(ModelError):
            model.add_relationship("a", "ghost", RelationshipType.FLOW)

    def test_physical_connection_requires_physical_endpoints(self):
        model = small_model()
        model.add_relationship(
            "tank", "pipe", RelationshipType.PHYSICAL_CONNECTION
        )
        with pytest.raises(ModelError):
            model.add_relationship(
                "a", "b", RelationshipType.PHYSICAL_CONNECTION
            )

    def test_check_can_be_disabled(self):
        model = small_model()
        model.add_relationship(
            "a", "b", RelationshipType.PHYSICAL_CONNECTION, check=False
        )

    def test_explicit_id_collision_rejected(self):
        model = small_model()
        model.add_relationship("a", "b", RelationshipType.FLOW, identifier="r1")
        with pytest.raises(ModelError):
            model.add_relationship(
                "b", "a", RelationshipType.FLOW, identifier="r1"
            )

    def test_generated_ids_skip_taken_ones(self):
        model = small_model()
        model.add_relationship("a", "b", RelationshipType.FLOW, identifier="r1")
        rel = model.add_relationship("b", "a", RelationshipType.FLOW)
        assert rel.identifier != "r1"


class TestPropagationGraph:
    def test_flow_is_directed(self):
        model = small_model()
        model.add_relationship("a", "b", RelationshipType.FLOW)
        graph = model.propagation_graph()
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("b", "a")

    def test_physical_connection_is_bidirectional(self):
        model = small_model()
        model.add_relationship(
            "tank", "pipe", RelationshipType.PHYSICAL_CONNECTION
        )
        graph = model.propagation_graph()
        assert graph.has_edge("tank", "pipe")
        assert graph.has_edge("pipe", "tank")

    def test_association_does_not_propagate(self):
        model = small_model()
        model.add_relationship("a", "b", RelationshipType.ASSOCIATION)
        graph = model.propagation_graph()
        assert not graph.has_edge("a", "b")

    def test_propagation_directions(self):
        assert propagation_directions(RelationshipType.FLOW) == (True, False)
        assert propagation_directions(
            RelationshipType.PHYSICAL_CONNECTION
        ) == (True, True)
        assert propagation_directions(RelationshipType.ASSOCIATION) == (
            False,
            False,
        )


class TestAspectMerging:
    def test_merge_adds_elements_and_relationships(self):
        architecture = small_model()
        deployment = SystemModel("deployment")
        deployment.add_element("c", "C", ElementType.DEVICE)
        merged = architecture.merge(deployment)
        assert merged.has_element("c")

    def test_merge_unites_properties(self):
        architecture = SystemModel("arch")
        architecture.add_element(
            "a", "A", ElementType.NODE, {"cpu": 2, "zone": "dmz"}
        )
        deployment = SystemModel("deploy")
        deployment.add_element("a", "A", ElementType.NODE, {"cpu": 4})
        architecture.merge(deployment)
        assert architecture.element("a").properties["cpu"] == 4  # aspect wins
        assert architecture.element("a").properties["zone"] == "dmz"

    def test_merge_type_conflict_rejected(self):
        architecture = small_model()
        other = SystemModel("other")
        other.add_element("a", "A", ElementType.EQUIPMENT)
        with pytest.raises(ModelError):
            architecture.merge(other)

    def test_merge_deduplicates_relationships_by_id(self):
        first = small_model()
        first.add_relationship("a", "b", RelationshipType.FLOW, identifier="x")
        second = small_model()
        second.add_relationship("a", "b", RelationshipType.FLOW, identifier="x")
        first.merge(second)
        assert len(first.relationships) == 1


class TestNetworkxExport:
    def test_multigraph_carries_attributes(self):
        model = small_model()
        model.add_relationship("a", "b", RelationshipType.FLOW)
        graph = model.to_networkx()
        assert graph.nodes["a"]["type"] == "node"
        assert graph.nodes["tank"]["layer"] == "physical"
        assert graph.number_of_edges() == 1

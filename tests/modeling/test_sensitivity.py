"""Unit tests for modeling-phase sensitivity support (Sec. II-A)."""

import pytest

from repro.epa import EpaEngine, StaticRequirement
from repro.modeling import (
    RelationshipType,
    SystemModel,
    critical_decisions,
    propagation_mode_impacts,
    property_impacts,
    rank_impacts,
    relationship_impacts,
    standard_cps_library,
)


def chain():
    library = standard_cps_library()
    model = SystemModel("chain")
    library.instantiate(model, "sensor", "s")
    library.instantiate(model, "filter", "f")
    library.instantiate(model, "actuator", "v")
    model.add_relationship("s", "f", RelationshipType.FLOW)
    model.add_relationship("f", "v", RelationshipType.FLOW)
    return model


def hazard_count(model):
    engine = EpaEngine(
        model,
        [
            StaticRequirement(
                "rv", "err(v, K), hazardous_kind(K)", focus="v"
            )
        ],
    )
    return float(len(engine.analyze(max_faults=1).violating()))


class TestPropagationModeImpacts:
    def test_filter_mode_is_critical(self):
        """The masking filter is load-bearing: flipping it to
        transparent exposes the actuator to sensor faults."""
        impacts = propagation_mode_impacts(chain(), hazard_count)
        by_subject = {i.decision.subject: i for i in impacts}
        assert by_subject["f"].critical

    def test_ranking_is_by_spread(self):
        impacts = propagation_mode_impacts(chain(), hazard_count)
        spreads = [i.spread for i in impacts]
        assert spreads == sorted(spreads, reverse=True)

    def test_baseline_recorded(self):
        impacts = propagation_mode_impacts(chain(), hazard_count)
        baseline = hazard_count(chain())
        assert all(i.baseline == baseline for i in impacts)

    def test_original_model_not_mutated(self):
        model = chain()
        before = model.element("f").properties["propagation_mode"]
        propagation_mode_impacts(model, hazard_count)
        assert model.element("f").properties["propagation_mode"] == before


class TestPropertyImpacts:
    def test_exposure_perturbation(self):
        model = chain()
        model.element("s").properties["exposure"] = "internal"

        def exposed_count(m):
            return float(
                sum(
                    1
                    for e in m.elements
                    if e.properties.get("exposure") == "public"
                )
            )

        impacts = property_impacts(
            model, exposed_count, "exposure", ["internal", "public"]
        )
        assert len(impacts) == 1
        assert impacts[0].critical

    def test_components_without_property_skipped(self):
        impacts = property_impacts(
            chain(), hazard_count, "no_such_property", ["a", "b"]
        )
        assert impacts == []


def unmasked_chain():
    """sensor -> controller -> actuator with no masking in between."""
    library = standard_cps_library()
    model = SystemModel("unmasked")
    library.instantiate(model, "sensor", "s")
    library.instantiate(model, "controller", "c")
    library.instantiate(model, "actuator", "v")
    model.add_relationship("s", "c", RelationshipType.FLOW)
    model.add_relationship("c", "v", RelationshipType.FLOW)
    return model


class TestRelationshipImpacts:
    def test_dropping_flow_changes_hazards(self):
        impacts = relationship_impacts(unmasked_chain(), hazard_count)
        assert len(impacts) == 2
        # dropping either flow disconnects upstream faults from the
        # requirement at the actuator
        assert all(i.critical for i in impacts)
        assert all(i.perturbed[0] < i.baseline for i in impacts)

    def test_critical_decisions_helper(self):
        impacts = relationship_impacts(unmasked_chain(), hazard_count)
        decisions = critical_decisions(impacts)
        assert decisions
        assert all(d.kind == "relationship" for d in decisions)

    def test_rank_impacts_stable_for_ties(self):
        impacts = relationship_impacts(unmasked_chain(), hazard_count)
        again = rank_impacts(impacts)
        assert [str(i.decision) for i in impacts] == [
            str(i.decision) for i in again
        ]

"""Tests for repro.observability."""

"""Exporters: Chrome trace JSON, Prometheus exposition, run manifests."""

import io
import json

from repro.observability import (
    ChromeTraceSink,
    MemoryTraceSink,
    MetricsRegistry,
    Tracer,
    prometheus_exposition,
    run_manifest,
    stats_digest,
    to_chrome_trace,
    write_metrics,
)


def _span_stream():
    """A realistic nested span stream recorded off a tracer."""
    sink = MemoryTraceSink()
    tracer = Tracer(sink)
    with tracer.span("pipeline.run"):
        with tracer.span("control.solve") as span:
            span.update(models=2)
        tracer.event("solver.model", number=1)
    return sink.events


class TestChromeTrace:
    def test_span_pairs_collapse_to_complete_events(self):
        doc = to_chrome_trace(_span_stream())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert sorted(e["name"] for e in complete) == [
            "control.solve",
            "pipeline.run",
        ]
        for event in complete:
            assert event["dur"] >= 0
            assert event["ts"] >= 0

    def test_begin_events_are_dropped(self):
        doc = to_chrome_trace(_span_stream())
        assert not any(
            e.get("args", {}).get("span") for e in doc["traceEvents"]
        )
        # 2 spans -> 2 X events, 1 flat event -> 1 instant
        assert len(doc["traceEvents"]) == 3

    def test_flat_events_become_instants(self):
        doc = to_chrome_trace(_span_stream())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["solver.model"]
        assert instants[0]["s"] == "t"
        assert instants[0]["args"]["number"] == 1

    def test_complete_event_anchored_at_start(self):
        events = [("work", 1.5, {"span": "E", "seconds": 0.5, "id": 1})]
        doc = to_chrome_trace(events)
        (event,) = doc["traceEvents"]
        assert event["ts"] == 1.0 * 1e6
        assert event["dur"] == 0.5 * 1e6

    def test_worker_tag_becomes_track_id(self):
        events = [
            ("work", 1.0, {"span": "E", "seconds": 0.1, "worker": 3}),
            ("tick", 2.0, {"worker": 5}),
        ]
        doc = to_chrome_trace(events)
        assert [e["tid"] for e in doc["traceEvents"]] == [3, 5]
        # the tag moved into tid, out of args
        assert all("worker" not in e["args"] for e in doc["traceEvents"])

    def test_schema_has_required_keys(self):
        doc = to_chrome_trace(_span_stream())
        assert doc["displayTimeUnit"] == "ms"
        for event in doc["traceEvents"]:
            assert {"name", "ph", "ts", "pid", "tid", "cat"} <= set(event)

    def test_chrome_sink_writes_one_valid_json_document(self):
        stream = io.StringIO()
        sink = ChromeTraceSink(stream)
        tracer = Tracer(sink)
        with tracer.span("stage"):
            pass
        sink.close()
        doc = json.loads(stream.getvalue())
        assert [e["name"] for e in doc["traceEvents"]] == ["stage"]

    def test_chrome_sink_owns_path_targets(self, tmp_path):
        path = tmp_path / "trace.json"
        with ChromeTraceSink(str(path)) as sink:
            sink.emit("tick", n=1)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"][0]["args"] == {"n": 1}


class TestPrometheusExposition:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("repro_models_total", "stable models").inc(12)
        registry.gauge("repro_workers").set(4)
        hist = registry.histogram(
            "repro_stage_seconds",
            "stage latency",
            buckets=(0.1, 1.0),
            stage="solve",
        )
        hist.observe(0.05)
        hist.observe(0.5)
        return registry

    def test_counter_with_help_and_type(self):
        text = prometheus_exposition(self._registry())
        assert "# HELP repro_models_total stable models\n" in text
        assert "# TYPE repro_models_total counter\n" in text
        assert "\nrepro_models_total 12\n" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        lines = prometheus_exposition(self._registry()).splitlines()
        buckets = [l for l in lines if l.startswith("repro_stage_seconds_bucket")]
        assert buckets == [
            'repro_stage_seconds_bucket{stage="solve",le="0.1"} 1',
            'repro_stage_seconds_bucket{stage="solve",le="1"} 2',
            'repro_stage_seconds_bucket{stage="solve",le="+Inf"} 2',
        ]
        assert 'repro_stage_seconds_count{stage="solve"} 2' in lines
        assert any(
            l.startswith('repro_stage_seconds_sum{stage="solve"}')
            for l in lines
        )

    def test_families_sorted_and_headers_unique(self):
        text = prometheus_exposition(self._registry())
        type_lines = [
            l for l in text.splitlines() if l.startswith("# TYPE")
        ]
        names = [l.split()[2] for l in type_lines]
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a"b\\c\nd').inc()
        text = prometheus_exposition(registry)
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_exposition(MetricsRegistry()) == ""

    def test_write_metrics_to_stream_and_path(self, tmp_path):
        registry = self._registry()
        stream = io.StringIO()
        write_metrics(registry, stream)
        assert stream.getvalue() == prometheus_exposition(registry)
        path = tmp_path / "metrics.prom"
        write_metrics(registry, str(path))
        assert path.read_text() == prometheus_exposition(registry)

    def test_write_metrics_dash_is_stdout(self, capsys):
        write_metrics(self._registry(), "-")
        assert "repro_models_total 12" in capsys.readouterr().out


class TestRunManifest:
    def test_manifest_shape(self):
        manifest = run_manifest(
            argv=["repro", "assess", "model.xml"],
            stats={"a": 1},
            seed=7,
            extra={"bench": "smoke"},
        )
        assert manifest["argv"] == ["repro", "assess", "model.xml"]
        assert manifest["seed"] == 7
        assert manifest["bench"] == "smoke"
        assert len(manifest["stats_digest"]) == 64
        assert "python" in manifest and "date" in manifest
        json.dumps(manifest)

    def test_digest_is_stable_and_order_insensitive(self):
        assert stats_digest({"a": 1, "b": 2}) == stats_digest({"b": 2, "a": 1})
        assert stats_digest({"a": 1}) != stats_digest({"a": 2})

    def test_digest_uses_to_dict_when_available(self):
        class Tree:
            def to_dict(self):
                return {"a": 1}

        assert stats_digest(Tree()) == stats_digest({"a": 1})

"""Tests for the worker-health stall detector."""

import pytest

from repro.observability import (
    DEFAULT_STALL_TIMEOUT_S,
    HealthError,
    MetricsRegistry,
    WorkerHealth,
    resolve_stall_timeout,
)
from repro.observability.health import STALL_TIMEOUT_ENV


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def detector(clock, timeout=10.0, registry=None):
    events = []

    def on_stall(worker, task, silent_s, reason):
        events.append((worker, task, silent_s, reason))

    health = WorkerHealth(
        stall_timeout=timeout,
        on_stall=on_stall,
        registry=registry if registry is not None else MetricsRegistry(),
        clock=clock,
    )
    return health, events


class TestResolveStallTimeout:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(STALL_TIMEOUT_ENV, raising=False)
        assert resolve_stall_timeout() == DEFAULT_STALL_TIMEOUT_S

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(STALL_TIMEOUT_ENV, "7.5")
        assert resolve_stall_timeout() == 7.5

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(STALL_TIMEOUT_ENV, "7.5")
        assert resolve_stall_timeout(3.0) == 3.0

    @pytest.mark.parametrize("bad", ["0", "-1", "soon"])
    def test_invalid_env_rejected(self, monkeypatch, bad):
        monkeypatch.setenv(STALL_TIMEOUT_ENV, bad)
        with pytest.raises(HealthError):
            resolve_stall_timeout()

    def test_invalid_explicit_rejected(self):
        with pytest.raises(HealthError):
            resolve_stall_timeout(0)


class TestWorkerHealth:
    def test_quiet_idle_worker_never_warns(self):
        clock = FakeClock()
        health, events = detector(clock)
        health.beat(0)
        clock.advance(1000.0)
        # idle (no task held): silence is fine, however long
        assert health.check({0: None}, {}) == 0
        assert events == []

    def test_silent_busy_worker_warns_once_per_attempt(self):
        clock = FakeClock()
        health, events = detector(clock, timeout=10.0)
        health.beat(0)
        clock.advance(11.0)
        assert health.check({0: 5}, {5: 1}) == 1
        assert events == [(0, 5, 11.0, "silent")]
        clock.advance(30.0)
        # same (worker, task, attempt): no warning spam
        assert health.check({0: 5}, {5: 1}) == 0
        # a retry bumps the attempt: fresh warning budget
        assert health.check({0: 5}, {5: 2}) == 1
        assert health.stalls == 2

    def test_beat_resets_the_silence_window(self):
        clock = FakeClock()
        health, events = detector(clock, timeout=10.0)
        health.beat(0)
        clock.advance(8.0)
        health.beat(0)
        clock.advance(8.0)
        assert health.silence(0) == 8.0
        assert health.check({0: 3}, {3: 1}) == 0
        assert events == []

    def test_dead_worker_warns_with_died_reason(self):
        clock = FakeClock()
        health, events = detector(clock, timeout=10.0)
        health.beat(1)
        clock.advance(2.0)
        health.dead(1, 7, {7: 1})
        assert events == [(1, 7, 2.0, "died")]

    def test_stalled_counter_increments(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        health, _ = detector(clock, timeout=5.0, registry=registry)
        counter = registry.counter("repro_worker_stalled_total")
        health.beat(0)
        clock.advance(6.0)
        health.check({0: 1}, {1: 1})
        assert counter.value == 1
        health.dead(2, 9, {9: 1})
        assert counter.value == 2

    def test_check_refreshes_heartbeat_age_gauges(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        health, _ = detector(clock, timeout=100.0, registry=registry)
        health.beat(0)
        health.beat(1)
        clock.advance(3.0)
        health.beat(1)
        health.check({0: None, 1: None}, {})
        age = lambda worker: registry.gauge(
            "repro_worker_heartbeat_age_seconds", worker=worker
        ).value
        assert age(0) == 3.0
        assert age(1) == 0.0

    def test_unseen_worker_counts_as_just_born(self):
        health, events = detector(FakeClock(), timeout=1.0)
        assert health.silence(42) == 0.0
        assert health.check({42: 0}, {0: 1}) == 0
        assert events == []

"""End-to-end instrumentation tests: statistics and traces off real solves."""

from repro.asp import Control
from repro.epa import EpaEngine, StaticRequirement
from repro.modeling import RelationshipType, SystemModel, standard_cps_library
from repro.observability import MemoryTraceSink, SolveStats, format_statistics

LISTING_1 = """
potential_fault(C, F) :-
    component(C), fault(F),
    mitigation(F, M),
    not active_mitigation(C, M).

component(engineering_workstation). component(hmi).
fault(infected).
mitigation(infected, user_training).
active_mitigation(hmi, user_training).
"""

CHOICE_PROGRAM = """
{ fault(a) ; fault(b) ; fault(c) }.
bad :- fault(a), fault(b).
:- bad.
"""


def _listing1_control(trace=None):
    ctl = Control(LISTING_1, trace=trace)
    ctl.ground()
    return ctl


class TestControlStatistics:
    def test_grounding_counters_nonzero_and_consistent(self):
        ctl = _listing1_control()
        ctl.solve()
        grounding = ctl.statistics["grounding"]
        assert grounding["rules_nonground"] > 0
        assert grounding["rules"] > 0
        assert grounding["atoms"] > 0
        assert grounding["rounds"] > 0
        # every kept ground rule came from some attempted instantiation
        assert grounding["instantiations"] >= grounding["rules"] - grounding["rules_simplified_away"]
        assert grounding["certain_atoms"] <= grounding["atoms"]

    def test_solving_counters_populated_after_solve(self):
        ctl = _listing1_control()
        models = ctl.solve()
        solving = ctl.statistics["solving"]
        assert solving["solvers"]["propagations"] > 0
        assert solving["variables"] > 0
        assert solving["models"] == len(models) == 1
        # Listing 1 is deterministic: propagation alone finds the model
        assert solving["solvers"]["choices"] == 0
        assert solving["solvers"]["conflicts"] == 0

    def test_summary_counters_and_times(self):
        ctl = _listing1_control()
        models = ctl.solve()
        summary = ctl.statistics["summary"]
        assert summary["calls"] == 1
        assert summary["models"]["enumerated"] == len(models)
        assert summary["times"]["ground"] > 0
        assert summary["times"]["solve"] > 0
        assert summary["times"]["total"] >= summary["times"]["ground"]

    def test_cdcl_counters_nonzero_on_choice_program(self):
        ctl = Control(CHOICE_PROGRAM)
        ctl.ground()
        models = ctl.solve()
        assert len(models) > 1
        solvers = ctl.statistics["solving"]["solvers"]
        assert solvers["choices"] > 0
        assert solvers["propagations"] > 0
        # enumeration + the integrity constraint force conflicts
        assert solvers["conflicts"] > 0
        assert solvers["choices"] >= solvers["conflicts"]

    def test_statistics_accumulate_across_calls(self):
        ctl = _listing1_control()
        ctl.solve()
        first = ctl.statistics.get_path("solving.solvers.propagations")
        ctl.solve()
        assert ctl.statistics.get_path("summary.calls") == 2
        assert ctl.statistics.get_path("solving.solvers.propagations") == 2 * first
        # sizes are overwritten, not summed, across calls
        assert ctl.statistics.get_path("solving.variables") > 0

    def test_optimize_records_costs(self):
        ctl = Control(
            """
            { pick(a) ; pick(b) }.
            chosen :- pick(a).
            chosen :- pick(b).
            :- not chosen.
            :~ pick(a). [3@1]
            :~ pick(b). [1@1]
            """
        )
        ctl.ground()
        models = ctl.optimize()
        assert models
        summary = ctl.statistics["summary"]
        assert summary["models"]["optimal"] >= 1
        assert summary["costs"] == [1]
        assert ctl.statistics.get_path("solving.bound_improvements") >= 0

    def test_format_statistics_of_real_solve(self):
        ctl = _listing1_control()
        ctl.solve()
        text = format_statistics(ctl.statistics)
        assert "Models       : 1" in text
        assert "Propagations : " in text
        assert "Rules        : " in text


class TestControlTrace:
    def test_trace_event_stream(self):
        sink = MemoryTraceSink()
        ctl = _listing1_control(trace=sink)
        ctl.solve()
        names = [event.name for event in sink.events]
        assert "grounder.round" in names
        assert "grounder.done" in names
        assert "solver.model" in names
        assert names[-1] == "control.solve"
        # grounder events precede solver events
        assert names.index("grounder.done") < names.index("solver.model")

    def test_model_events_carry_numbers(self):
        sink = MemoryTraceSink()
        ctl = Control(CHOICE_PROGRAM, trace=sink)
        ctl.ground()
        models = ctl.solve()
        numbers = [e.payload["number"] for e in sink.named("solver.model")]
        assert numbers == list(range(1, len(models) + 1))


def _mini_model():
    library = standard_cps_library()
    model = SystemModel("mini_plant")
    library.instantiate(model, "sensor", "pressure_sensor")
    library.instantiate(model, "controller", "plc")
    library.instantiate(model, "actuator", "relief_valve")
    model.add_relationship("pressure_sensor", "plc", RelationshipType.FLOW)
    model.add_relationship("plc", "relief_valve", RelationshipType.FLOW)
    return model


class TestEngineStatistics:
    def test_epa_engine_aggregates(self):
        sink = MemoryTraceSink()
        engine = EpaEngine(
            _mini_model(),
            [StaticRequirement(
                "safe", "err(relief_valve, K), hazardous_kind(K)",
                focus="relief_valve", magnitude="VH")],
            trace=sink,
        )
        report = engine.analyze(max_faults=1)
        stats = engine.statistics
        assert isinstance(stats, SolveStats)
        assert stats.get_path("epa.analyze_calls") == 1
        assert stats.get_path("epa.scenarios") == len(report)
        assert stats.get_path("grounding.rules") > 0
        assert stats.get_path("solving.solvers.choices") > 0
        assert stats.get_path("summary.models.enumerated") > 0
        # the analyze span closes into a begin/end event pair
        analyze_events = sink.named("epa.analyze")
        assert [e.payload.get("span") for e in analyze_events] == ["B", "E"]
        assert analyze_events[-1].payload["scenarios"] == len(report)


REQUIREMENTS = [
    StaticRequirement(
        "safe",
        "err(relief_valve, K), hazardous_kind(K)",
        focus="relief_valve",
        magnitude="VH",
    )
]


class TestRunObservability:
    def test_materialized_analyze_records_peak_rss(self):
        from repro.observability.metrics import get_registry

        gauge = get_registry().gauge(
            "repro_peak_rss_bytes", "peak resident set size of the process"
        )
        gauge.set(0)
        EpaEngine(_mini_model(), REQUIREMENTS).analyze(max_faults=1)
        assert gauge.value > 0

    def test_fleet_generation_emits_a_span(self):
        from repro.security.fleet import FleetSpec, build_fleet_model

        sink = MemoryTraceSink()
        spec = FleetSpec(tiers=2, components_per_tier=2)
        build_fleet_model(spec, trace=sink)
        events = sink.named("fleet.generate")
        assert [e.payload.get("span") for e in events] == ["B", "E"]
        assert events[-1].payload["components"] == 4
        assert events[-1].payload["seed"] == spec.seed

    def test_checkpoint_spans_distinguish_write_and_read(self, tmp_path):
        token = str(tmp_path / "sweep.ckpt")
        first_sink = MemoryTraceSink()
        EpaEngine(_mini_model(), REQUIREMENTS, trace=first_sink).aggregate(
            max_faults=1, checkpoint=token
        )
        modes = [
            e.payload["mode"]
            for e in first_sink.named("epa.checkpoint")
            if e.payload.get("span") == "B"
        ]
        assert modes and set(modes) == {"write"}
        # a resume reads the token before (possibly) re-writing it
        resume_sink = MemoryTraceSink()
        EpaEngine(_mini_model(), REQUIREMENTS, trace=resume_sink).aggregate(
            max_faults=1, checkpoint=token
        )
        modes = [
            e.payload["mode"]
            for e in resume_sink.named("epa.checkpoint")
            if e.payload.get("span") == "B"
        ]
        assert modes[0] == "read"

    def test_progress_tracker_follows_a_materialized_analyze(self):
        from repro.observability import ProgressTracker

        tracker = ProgressTracker(min_interval=0.0)
        report = EpaEngine(
            _mini_model(), REQUIREMENTS, progress=tracker
        ).analyze(max_faults=1)
        assert tracker.scenarios == len(report)

    def test_progress_tracker_follows_a_streamed_sweep(self):
        from repro.observability import ProgressTracker

        tracker = ProgressTracker(min_interval=0.0)
        aggregate = EpaEngine(
            _mini_model(), REQUIREMENTS, progress=tracker
        ).aggregate(max_faults=1)
        assert tracker.scenarios == aggregate.scenarios

    def test_progress_tracker_follows_a_sharded_sweep(self):
        from repro.observability import ProgressTracker

        tracker = ProgressTracker(min_interval=0.0)
        report = EpaEngine(
            _mini_model(), REQUIREMENTS, workers=2, progress=tracker
        ).analyze(max_faults=1)
        assert tracker.scenarios == len(report)
        assert tracker.cubes_total > 0
        assert tracker.cubes_done == tracker.cubes_total

"""Tests for the run ledger: recorder, index, diff, gc."""

import json
import os
import time

import pytest

from repro.observability import MetricsRegistry
from repro.observability.ledger import (
    DEFAULT_RUNS_ROOT,
    LEDGER_NAME,
    MANIFEST_NAME,
    METRICS_NAME,
    RUNS_DIR_ENV,
    STATS_NAME,
    LedgerError,
    RunRecorder,
    baseline_for,
    config_digest,
    diff_runs,
    file_digest,
    gc_runs,
    list_runs,
    load_manifest,
    read_ledger,
    resolve_run,
    resolve_runs_root,
)

CONFIG = {"command": "analyze", "model_sha256": "abc", "max_faults": 2}


@pytest.fixture
def fake_durations(monkeypatch):
    """Make perf_counter scripted so run durations are deterministic.

    Returns a feeder: ``feed(t0, t1, ...)`` queues the next readings;
    once the queue drains, readings stick at the last value.
    """
    queue = []

    def perf_counter():
        if len(queue) > 1:
            return queue.pop(0)
        return queue[0] if queue else 0.0

    def feed(*values):
        queue[:] = values

    monkeypatch.setattr(time, "perf_counter", perf_counter)
    return feed


def record_run(
    root,
    config=CONFIG,
    command="analyze",
    result_digest="r1",
    scenarios=100,
    violating=40,
    finish=True,
):
    recorder = RunRecorder(
        command, config, root=str(root), registry=MetricsRegistry()
    )
    if finish:
        recorder.note(scenarios=scenarios, violating=violating)
        recorder.finish(result_digest=result_digest)
    return recorder


class TestRootAndDigests:
    def test_root_resolution_order(self, monkeypatch):
        monkeypatch.setenv(RUNS_DIR_ENV, "/env/runs")
        assert resolve_runs_root("/explicit") == "/explicit"
        assert resolve_runs_root() == "/env/runs"
        monkeypatch.delenv(RUNS_DIR_ENV)
        assert resolve_runs_root() == DEFAULT_RUNS_ROOT

    def test_config_digest_ignores_key_order(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest(
            {"b": 2, "a": 1}
        )
        assert config_digest({"a": 1}) != config_digest({"a": 2})

    def test_file_digest_tracks_content(self, tmp_path):
        path = tmp_path / "model.xml"
        path.write_text("<system/>")
        first = file_digest(str(path))
        path.write_text("<system><tank/></system>")
        assert file_digest(str(path)) != first


class TestRunRecorder:
    def test_started_line_lands_before_any_work(self, tmp_path):
        recorder = record_run(tmp_path, finish=False)
        # a kill right here must still leave a valid partial entry
        records = read_ledger(str(tmp_path))
        assert [r["event"] for r in records] == ["started"]
        assert records[0]["run_id"] == recorder.run_id
        (entry,) = list_runs(str(tmp_path))
        assert entry["status"] == "partial"
        assert os.path.isfile(
            os.path.join(recorder.path, MANIFEST_NAME)
        )
        assert load_manifest(recorder.run_id, str(tmp_path))["status"] == (
            "running"
        )

    def test_finish_writes_artifacts_and_finished_line(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", "test counter").inc(3)
        trace = tmp_path / "trace.json"
        trace.write_text("[]")
        recorder = RunRecorder(
            "analyze", CONFIG, root=str(tmp_path), registry=registry
        )
        recorder.note(scenarios=254, violating=232)
        run_id = recorder.finish(
            stats={"solver": {"conflicts": 9}},
            result_digest="deadbeef",
            trace_file=str(trace),
        )
        manifest = load_manifest(run_id, str(tmp_path))
        assert manifest["status"] == "complete"
        assert manifest["result_digest"] == "deadbeef"
        assert manifest["summary"] == {"scenarios": 254, "violating": 232}
        assert "stats_digest" in manifest
        run_dir = os.path.join(str(tmp_path), run_id)
        assert "repro_test_total 3" in open(
            os.path.join(run_dir, METRICS_NAME)
        ).read()
        stats = json.load(open(os.path.join(run_dir, STATS_NAME)))
        assert stats["tree"] == {"solver": {"conflicts": 9}}
        assert stats["digest"] == manifest["stats_digest"]
        assert os.path.isfile(os.path.join(run_dir, "trace.json"))
        finished = read_ledger(str(tmp_path))[-1]
        assert finished["event"] == "finished"
        assert finished["scenarios"] == 254

    def test_double_finish_raises(self, tmp_path):
        recorder = record_run(tmp_path)
        with pytest.raises(LedgerError):
            recorder.finish()

    def test_fail_records_error_status(self, tmp_path):
        recorder = record_run(tmp_path, finish=False)
        recorder.fail(ValueError("boom"))
        (entry,) = list_runs(str(tmp_path))
        assert entry["status"] == "error"
        manifest = load_manifest(entry["run_id"], str(tmp_path))
        assert "boom" in manifest["summary"]["error"]

    def test_same_second_run_ids_disambiguate(self, tmp_path):
        a = record_run(tmp_path)
        b = record_run(tmp_path)
        assert a.run_id != b.run_id

    def test_malformed_ledger_rejected(self, tmp_path):
        record_run(tmp_path)
        with open(os.path.join(str(tmp_path), LEDGER_NAME), "a") as handle:
            handle.write("{not json\n")
        with pytest.raises(LedgerError):
            read_ledger(str(tmp_path))


class TestResolveRun:
    def test_latest_and_prefix(self, tmp_path):
        old = record_run(tmp_path, command="alpha")
        new = record_run(tmp_path, command="beta")
        root = str(tmp_path)
        assert resolve_run("latest", root) == new.run_id
        assert resolve_run("", root) == new.run_id
        assert resolve_run(old.run_id, root) == old.run_id
        # the command segment makes this prefix unique
        assert resolve_run(old.run_id[:-1], root) == old.run_id

    def test_ambiguous_and_unknown_refs(self, tmp_path):
        record_run(tmp_path, command="alpha")
        record_run(tmp_path, command="beta")
        root = str(tmp_path)
        with pytest.raises(LedgerError):
            resolve_run("2", root)  # both ids start with the timestamp
        with pytest.raises(LedgerError):
            resolve_run("nosuchrun", root)

    def test_empty_ledger_raises(self, tmp_path):
        with pytest.raises(LedgerError):
            resolve_run("latest", str(tmp_path))


class TestDiff:
    def test_same_config_round_trip_is_zero_deltas(
        self, tmp_path, fake_durations
    ):
        fake_durations(0.0, 1.0)  # baseline: 1s
        record_run(tmp_path, result_digest="same")
        fake_durations(0.0, 1.0)  # repeat: 1s
        record_run(tmp_path, result_digest="same")
        diff = diff_runs("latest", root=str(tmp_path))
        assert diff["config_match"] is True
        assert diff["result_match"] is True
        assert diff["scenarios_delta"] == 0
        assert diff["violating_delta"] == 0
        assert diff["zero_deltas"] is True
        assert diff["regression"] is False

    def test_result_change_under_same_config_is_a_regression(
        self, tmp_path, fake_durations
    ):
        fake_durations(0.0, 1.0)
        record_run(tmp_path, result_digest="aaa")
        fake_durations(0.0, 1.0)
        record_run(tmp_path, result_digest="bbb", violating=41)
        diff = diff_runs("latest", root=str(tmp_path))
        assert diff["result_match"] is False
        assert diff["violating_delta"] == 1
        assert diff["zero_deltas"] is False
        assert diff["regression"] is True

    def test_duration_blowup_is_a_regression(self, tmp_path, fake_durations):
        fake_durations(0.0, 1.0)  # baseline: 1s
        record_run(tmp_path, result_digest="same")
        fake_durations(0.0, 2.0)  # repeat: 2s -> ratio 2.0 > 1.25
        record_run(tmp_path, result_digest="same")
        diff = diff_runs("latest", root=str(tmp_path))
        assert diff["zero_deltas"] is True  # numbers still agree
        assert diff["duration_ratio"] == 2.0
        assert diff["regression"] is True

    def test_baseline_skips_other_configs_and_partials(self, tmp_path):
        other = dict(CONFIG, max_faults=3)
        base = record_run(tmp_path)
        record_run(tmp_path, config=other)  # different config digest
        record_run(tmp_path, finish=False)  # partial: never a baseline
        target = record_run(tmp_path)
        assert baseline_for(target.run_id, str(tmp_path)) == base.run_id

    def test_diff_without_baseline_raises(self, tmp_path):
        record_run(tmp_path)
        with pytest.raises(LedgerError):
            diff_runs("latest", root=str(tmp_path))

    def test_explicit_pair_diff(self, tmp_path):
        a = record_run(tmp_path, command="alpha", result_digest="x")
        b = record_run(tmp_path, command="beta", result_digest="x")
        diff = diff_runs(b.run_id, a.run_id, root=str(tmp_path))
        assert diff["a"] == b.run_id
        assert diff["b"] == a.run_id
        assert diff["result_match"] is True


class TestGc:
    def test_gc_drops_oldest_and_compacts_the_ledger(self, tmp_path):
        runs = [record_run(tmp_path, command="c%d" % i) for i in range(4)]
        removed = gc_runs(keep=2, root=str(tmp_path))
        assert removed == [runs[0].run_id, runs[1].run_id]
        for recorder in runs[:2]:
            assert not os.path.exists(recorder.path)
        survivors = {r["run_id"] for r in list_runs(str(tmp_path))}
        assert survivors == {runs[2].run_id, runs[3].run_id}
        # the rewritten ledger holds only survivor lines
        for record in read_ledger(str(tmp_path)):
            assert record["run_id"] in survivors

    def test_gc_noop_when_under_budget(self, tmp_path):
        record_run(tmp_path)
        assert gc_runs(keep=5, root=str(tmp_path)) == []

    def test_gc_rejects_negative_keep(self, tmp_path):
        with pytest.raises(LedgerError):
            gc_runs(keep=-1, root=str(tmp_path))

"""Metrics registry: instrument semantics, serialization, merge."""

import pytest

from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    MetricsError,
    MetricsRegistry,
    get_registry,
)


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("models_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("models_total")
        with pytest.raises(MetricsError):
            counter.inc(-1)

    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        a = registry.counter("c", stage="ground")
        b = registry.counter("c", stage="solve")
        assert a is not b
        a.inc()
        assert b.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("workers")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3


class TestHistogram:
    def test_observations_land_in_the_right_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 5.0, 50.0):
            hist.observe(value)
        # per-bucket (non-cumulative) counts, +Inf slot last
        assert hist.bucket_counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(55.65)

    def test_cumulative_counts_roll_up(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 3.0):
            hist.observe(value)
        assert hist.cumulative_counts() == [1, 2, 3]

    def test_boundary_value_falls_in_its_bucket(self):
        # Prometheus buckets are upper-inclusive: le=1.0 counts 1.0
        hist = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        hist.observe(1.0)
        assert hist.bucket_counts == [1, 0, 0]

    def test_default_buckets_are_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().histogram("lat", buckets=(1.0, 0.5))

    def test_duplicate_buckets_rejected(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().histogram("lat", buckets=(1.0, 1.0))


class TestRegistry:
    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(MetricsError):
            registry.gauge("m")
        with pytest.raises(MetricsError):
            registry.histogram("m")

    def test_kind_collision_across_label_sets_raises(self):
        registry = MetricsRegistry()
        registry.counter("m", stage="a")
        with pytest.raises(MetricsError):
            registry.gauge("m", stage="b")

    def test_first_help_wins(self):
        registry = MetricsRegistry()
        registry.counter("m", "first description")
        registry.counter("m", "second description")
        assert registry.help_for("m") == "first description"

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("m")
        hist = registry.histogram("h", buckets=(1.0,))
        counter.inc(3)
        hist.observe(0.5)
        registry.reset()
        assert counter.value == 0
        assert hist.count == 0 and hist.sum == 0
        # the cached handle is still the registered instrument
        counter.inc()
        assert registry.counter("m").value == 1

    def test_to_dict_is_sorted_and_json_shaped(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b_total", "bees").inc(2)
        registry.counter("a_total", "ays").inc(1)
        registry.histogram("lat", buckets=(1.0,), stage="solve").observe(0.5)
        snapshot = registry.to_dict()
        assert list(snapshot) == ["a_total", "b_total", "lat"]
        assert snapshot["b_total"]["series"][0]["value"] == 2
        assert snapshot["lat"]["series"][0]["labels"] == {"stage": "solve"}
        json.dumps(snapshot)  # JSON-safe by construction

    def test_process_default_registry_is_shared(self):
        assert get_registry() is get_registry()


class TestMerge:
    def _worker_snapshot(self, models, latency):
        registry = MetricsRegistry()
        registry.counter("models_total", "models").inc(models)
        registry.gauge("workers").set(4)
        registry.histogram(
            "lat", buckets=(0.1, 1.0), stage="solve"
        ).observe(latency)
        return registry.to_dict()

    def test_merge_sums_counters_and_histograms(self):
        parent = MetricsRegistry()
        parent.merge(self._worker_snapshot(3, 0.05))
        parent.merge(self._worker_snapshot(2, 0.5))
        assert parent.counter("models_total").value == 5
        hist = parent.histogram("lat", buckets=(0.1, 1.0), stage="solve")
        assert hist.count == 2
        assert hist.bucket_counts == [1, 1, 0]

    def test_merge_order_independent(self):
        snapshots = [
            self._worker_snapshot(3, 0.05),
            self._worker_snapshot(2, 0.5),
            self._worker_snapshot(7, 2.0),
        ]
        forward = MetricsRegistry()
        for snapshot in snapshots:
            forward.merge(snapshot)
        backward = MetricsRegistry()
        for snapshot in reversed(snapshots):
            backward.merge(snapshot)
        assert forward.to_dict() == backward.to_dict()

    def test_merge_into_populated_registry(self):
        parent = MetricsRegistry()
        parent.counter("models_total", "models").inc(10)
        parent.merge(self._worker_snapshot(5, 0.2))
        assert parent.counter("models_total").value == 15

    def test_merge_carries_help_text(self):
        parent = MetricsRegistry()
        parent.merge(self._worker_snapshot(1, 0.1))
        assert parent.help_for("models_total") == "models"

    def test_gauge_merge_takes_incoming_value(self):
        parent = MetricsRegistry()
        parent.gauge("workers").set(1)
        parent.merge(self._worker_snapshot(0, 0.1))
        assert parent.gauge("workers").value == 4

    def test_bucket_layout_mismatch_raises(self):
        parent = MetricsRegistry()
        parent.histogram("lat", buckets=(0.5,), stage="solve")
        with pytest.raises(MetricsError):
            parent.merge(self._worker_snapshot(0, 0.1))

    def test_unknown_kind_raises(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().merge({"m": {"kind": "summary", "series": []}})

    def _telemetry_snapshot(self, worker, age, stalls, scenarios):
        """One worker's health/progress telemetry, as shipped to the parent."""
        registry = MetricsRegistry()
        registry.gauge(
            "repro_worker_heartbeat_age_seconds",
            "seconds since each pool worker was last heard from",
            worker=worker,
        ).set(age)
        registry.counter(
            "repro_worker_stalled_total", "stalled or dead workers"
        ).inc(stalls)
        registry.gauge(
            "repro_progress_scenarios", "scenarios folded so far"
        ).set(scenarios)
        return registry.to_dict()

    def test_worker_telemetry_snapshots_merge_out_of_order(self):
        snapshots = [
            self._telemetry_snapshot(worker=0, age=1.5, stalls=1, scenarios=100),
            self._telemetry_snapshot(worker=1, age=0.2, stalls=2, scenarios=250),
            self._telemetry_snapshot(worker=2, age=9.0, stalls=0, scenarios=400),
        ]
        arrival_orders = [snapshots, list(reversed(snapshots))]
        for order in arrival_orders:
            parent = MetricsRegistry()
            for snapshot in order:
                parent.merge(snapshot)
            # stall counters sum whatever the arrival order
            assert parent.counter("repro_worker_stalled_total").value == 3
            # per-worker heartbeat gauges are distinct labeled series:
            # each keeps its own worker's reading in either order
            age = lambda worker: parent.gauge(
                "repro_worker_heartbeat_age_seconds", worker=worker
            ).value
            assert (age(0), age(1), age(2)) == (1.5, 0.2, 9.0)
            # the unlabeled progress gauge is one series: last write wins,
            # so it reflects whichever snapshot arrived last
            assert (
                parent.gauge("repro_progress_scenarios").value
                == order[-1]["repro_progress_scenarios"]["series"][0]["value"]
            )

    def test_roundtrip_through_serialization(self):
        original = MetricsRegistry()
        original.counter("c", "help").inc(3)
        original.histogram("h", buckets=(1.0,)).observe(0.4)
        copy = MetricsRegistry()
        copy.merge(original.to_dict())
        assert copy.to_dict() == original.to_dict()

"""Tests for the live-progress tracker and its terminal renderer."""

import io

from repro.observability import (
    MetricsRegistry,
    ProgressRenderer,
    ProgressSnapshot,
    ProgressTracker,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def tracker(clock, registry=None, on_update=None, min_interval=0.5):
    return ProgressTracker(
        registry=registry,
        on_update=on_update,
        min_interval=min_interval,
        clock=clock,
    )


class TestProgressTracker:
    def test_rate_and_eta_extrapolate_from_fresh_work(self):
        clock = FakeClock()
        progress = tracker(clock)
        progress.set_total_cubes(4)
        clock.advance(2.0)
        progress.add_scenarios(100)
        progress.cube_done()
        snap = progress.snapshot()
        assert snap.scenarios == 100
        assert snap.rate == 50.0
        assert snap.cubes_done == 1
        assert snap.cubes_total == 4
        # 1 of 4 cubes in 2s -> 3 more cubes -> 6s to go
        assert snap.eta_seconds == 6.0

    def test_eta_unknown_until_first_cube_and_zero_when_done(self):
        clock = FakeClock()
        progress = tracker(clock)
        progress.set_total_cubes(2)
        clock.advance(1.0)
        assert progress.snapshot().eta_seconds is None
        progress.cube_done()
        progress.cube_done()
        assert progress.snapshot().eta_seconds == 0.0

    def test_preseeded_checkpoint_work_excluded_from_rate(self):
        clock = FakeClock()
        progress = tracker(clock)
        progress.set_total_cubes(4, done=2)
        progress.preseed_scenarios(1000)
        clock.advance(2.0)
        progress.add_scenarios(50)
        progress.cube_done()
        snap = progress.snapshot()
        # shown: resumed + fresh; rated: fresh only
        assert snap.scenarios == 1050
        assert snap.cubes_done == 3
        assert snap.rate == 25.0
        # 1 fresh cube of 2 fresh in 2s -> 2s remaining
        assert snap.eta_seconds == 2.0

    def test_negative_rollback_clamps_at_zero(self):
        progress = tracker(FakeClock())
        progress.add_scenarios(5)
        progress.add_scenarios(-3)
        assert progress.scenarios == 2
        progress.add_scenarios(-10)
        assert progress.scenarios == 0

    def test_updates_throttled_by_min_interval(self):
        clock = FakeClock()
        seen = []
        progress = tracker(clock, on_update=seen.append, min_interval=0.5)
        for _ in range(10):
            progress.add_scenarios(1)
        assert seen == []  # no time passed: throttled
        clock.advance(0.6)
        progress.add_scenarios(1)
        assert len(seen) == 1
        progress.add_scenarios(1)
        assert len(seen) == 1  # throttled again until the next window

    def test_export_publishes_progress_gauges(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        progress = tracker(clock, registry=registry)
        progress.set_total_cubes(8)
        clock.advance(1.0)
        progress.add_scenarios(40)
        progress.cube_done(2)
        progress.export()
        assert registry.gauge("repro_progress_scenarios").value == 40
        assert (
            registry.gauge("repro_progress_scenarios_per_second").value
            == 40.0
        )
        assert registry.gauge("repro_progress_cubes_done").value == 2
        assert registry.gauge("repro_progress_cubes_total").value == 8
        assert registry.gauge("repro_progress_eta_seconds").value == 3.0
        assert registry.gauge("repro_progress_elapsed_seconds").value == 1.0

    def test_unknown_eta_exports_minus_one(self):
        registry = MetricsRegistry()
        progress = tracker(FakeClock(), registry=registry)
        progress.export()
        assert registry.gauge("repro_progress_eta_seconds").value == -1.0

    def test_finish_forces_update_and_export(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        seen = []
        progress = tracker(clock, registry=registry, on_update=seen.append)
        progress.add_scenarios(3)  # below the throttle window
        snap = progress.finish()
        assert seen == [snap]
        assert snap.scenarios == 3
        assert registry.gauge("repro_progress_scenarios").value == 3


class TestProgressRenderer:
    def _snapshot(self, **overrides):
        defaults = dict(
            scenarios=120,
            rate=60.0,
            cubes_done=2,
            cubes_total=4,
            elapsed=2.0,
            eta_seconds=2.0,
        )
        defaults.update(overrides)
        return ProgressSnapshot(**defaults)

    def test_renders_carriage_return_line(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream)
        renderer.update(self._snapshot())
        out = stream.getvalue()
        assert out.startswith("\r")
        assert "120 scenarios" in out
        assert "60/s" in out
        assert "cubes 2/4" in out
        assert "ETA 0:02" in out

    def test_shorter_line_padded_over_previous(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream)
        renderer.update(self._snapshot(scenarios=1000000))
        long_width = len(stream.getvalue()) - 1  # minus the \r
        renderer.update(self._snapshot(scenarios=1))
        # the second write blanks the leftovers of the first
        second = stream.getvalue().split("\r")[2]
        assert len(second) == long_width

    def test_close_ends_the_line_once(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream)
        renderer.update(self._snapshot())
        renderer.close()
        renderer.close()
        assert stream.getvalue().endswith("\n")
        assert stream.getvalue().count("\n") == 1

    def test_close_without_render_writes_nothing(self):
        stream = io.StringIO()
        ProgressRenderer(stream=stream).close()
        assert stream.getvalue() == ""

    def test_broken_stream_goes_silent(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream)
        renderer.update(self._snapshot())
        stream.close()
        renderer.update(self._snapshot())  # must not raise
        renderer.close()

    def test_snapshot_render_skips_unknown_parts(self):
        text = self._snapshot(
            cubes_total=0, cubes_done=0, eta_seconds=None
        ).render()
        assert "cubes" not in text
        assert "ETA" not in text
        assert "120 scenarios" in text

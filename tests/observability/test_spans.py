"""Hierarchical span behaviour: nesting, error capture, no-op path."""

import pytest

from repro.observability import (
    MemoryTraceSink,
    NOOP_SPAN,
    NULL_SINK,
    Tracer,
    current_span,
)


def _pairs(sink):
    """(name, phase, payload) triples of the span events in the sink."""
    return [
        (e.name, e.payload.get("span"), e.payload) for e in sink.events
    ]


class TestSpanEvents:
    def test_span_closes_into_begin_end_pair(self):
        sink = MemoryTraceSink()
        tracer = Tracer(sink)
        with tracer.span("stage", size=3):
            pass
        assert [(n, p) for n, p, _ in _pairs(sink)] == [
            ("stage", "B"),
            ("stage", "E"),
        ]
        begin, end = sink.events
        assert begin.payload["id"] == end.payload["id"]
        assert begin.payload["size"] == 3
        assert end.payload["seconds"] >= 0

    def test_closing_event_carries_updated_attributes(self):
        sink = MemoryTraceSink()
        tracer = Tracer(sink)
        with tracer.span("stage") as span:
            span.set_attribute("models", 7)
            span.update(conflicts=2, restarts=0)
        end = sink.events[-1].payload
        assert end["models"] == 7
        assert end["conflicts"] == 2
        # attributes added after open do not rewrite the begin event
        assert "models" not in sink.events[0].payload

    def test_nesting_links_parent_ids(self):
        sink = MemoryTraceSink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None
        inner_end = [
            e for e in sink.events
            if e.name == "inner" and e.payload["span"] == "E"
        ][0]
        assert inner_end.payload["parent"] == outer.span_id

    def test_nesting_works_across_tracers_sharing_a_sink(self):
        # the EPA engine and the control have separate tracers; the
        # ambient context still links their spans
        sink = MemoryTraceSink()
        with Tracer(sink).span("epa.analyze") as outer:
            with Tracer(sink).span("control.solve") as inner:
                assert inner.parent_id == outer.span_id

    def test_sibling_spans_share_a_parent(self):
        sink = MemoryTraceSink()
        tracer = Tracer(sink)
        with tracer.span("parent") as parent:
            with tracer.span("first") as first:
                pass
            with tracer.span("second") as second:
                pass
        assert first.parent_id == parent.span_id
        assert second.parent_id == parent.span_id
        assert first.span_id != second.span_id


class TestSpanErrors:
    def test_exception_closes_span_with_error(self):
        sink = MemoryTraceSink()
        tracer = Tracer(sink)
        with pytest.raises(ValueError):
            with tracer.span("stage"):
                raise ValueError("boom")
        end = sink.events[-1].payload
        assert end["span"] == "E"
        assert end["error"] == "ValueError: boom"
        # the ambient context is restored even on the error path
        assert current_span() is None

    def test_parent_restored_after_child_raises(self):
        sink = MemoryTraceSink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            with pytest.raises(RuntimeError):
                with tracer.span("inner"):
                    raise RuntimeError("inner failure")
            assert current_span() is outer
            with tracer.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id

    def test_error_spans_still_emit_duration(self):
        sink = MemoryTraceSink()
        tracer = Tracer(sink)
        with pytest.raises(KeyError):
            with tracer.span("stage"):
                raise KeyError("missing")
        assert sink.events[-1].payload["seconds"] >= 0


class TestNoopPath:
    def test_null_sink_tracer_hands_out_the_shared_noop_span(self):
        tracer = Tracer(NULL_SINK)
        assert not tracer.enabled
        span = tracer.span("anything", big=1)
        assert span is NOOP_SPAN
        with span as entered:
            entered.set_attribute("k", "v")
            entered.update(models=3)
        assert span.duration == 0.0

    def test_noop_span_does_not_become_the_ambient_span(self):
        with Tracer(NULL_SINK).span("stage"):
            assert current_span() is None

    def test_default_tracer_is_disabled(self):
        assert not Tracer().enabled
        Tracer().event("never", x=1)  # must not raise

    def test_noop_event_emits_nothing(self):
        sink = MemoryTraceSink()
        Tracer(NULL_SINK).event("dropped")
        assert sink.events == []


class TestWorkerTag:
    def test_worker_tag_rides_span_events(self):
        sink = MemoryTraceSink()
        tracer = Tracer(sink, worker=3)
        with tracer.span("stage"):
            pass
        assert all(e.payload["worker"] == 3 for e in sink.events)

    def test_worker_tag_rides_instant_events(self):
        sink = MemoryTraceSink()
        Tracer(sink, worker=1).event("tick", n=1)
        assert sink.events[0].payload == {"n": 1, "worker": 1}

    def test_instant_event_without_worker_has_no_tag(self):
        sink = MemoryTraceSink()
        Tracer(sink).event("tick")
        assert "worker" not in sink.events[0].payload

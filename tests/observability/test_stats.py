"""Unit tests for the SolveStats tree, timers and trace sinks."""

import io
import json

import pytest

from repro.observability import (
    Counter,
    HumanTraceSink,
    JsonLinesTraceSink,
    MemoryTraceSink,
    NULL_SINK,
    NullTraceSink,
    SolveStats,
    StatsError,
    Timer,
    TraceEvent,
    format_statistics,
    open_trace,
)


class TestSolveStats:
    def test_dotted_set_and_get(self):
        stats = SolveStats()
        stats.set("solving.solvers.choices", 5)
        assert stats["solving"]["solvers"]["choices"] == 5
        assert stats.get_path("solving.solvers.choices") == 5

    def test_get_path_default(self):
        stats = SolveStats()
        assert stats.get_path("no.such.path") is None
        assert stats.get_path("no.such.path", 0) == 0

    def test_get_path_through_leaf_returns_default(self):
        stats = SolveStats()
        stats.set("a.b", 1)
        assert stats.get_path("a.b.c", "d") == "d"

    def test_incr_creates_and_accumulates(self):
        stats = SolveStats()
        stats.incr("x.y")
        stats.incr("x.y", 4)
        assert stats.get_path("x.y") == 5

    def test_incr_interior_node_raises(self):
        stats = SolveStats()
        stats.set("a.b", 1)
        with pytest.raises(StatsError):
            stats.incr("a")

    def test_child_through_leaf_raises(self):
        stats = SolveStats()
        stats.set("a", 1)
        with pytest.raises(StatsError):
            stats.child("a.b")

    def test_mapping_protocol(self):
        stats = SolveStats({"a": 1, "b": {"c": 2}})
        assert len(stats) == 2
        assert sorted(stats) == ["a", "b"]
        assert isinstance(stats["b"], SolveStats)
        del stats["a"]
        assert "a" not in stats

    def test_merge_sums_numeric_leaves(self):
        left = SolveStats({"solving": {"solvers": {"conflicts": 2}}})
        right = SolveStats({"solving": {"solvers": {"conflicts": 3, "choices": 1}}})
        left.merge(right)
        assert left.get_path("solving.solvers.conflicts") == 5
        assert left.get_path("solving.solvers.choices") == 1

    def test_merge_recurses_and_overwrites_non_numeric(self):
        left = SolveStats({"summary": {"costs": [9], "calls": 1}})
        right = SolveStats({"summary": {"costs": [4], "calls": 1}})
        left.merge(right)
        assert left.get_path("summary.costs") == [4]
        assert left.get_path("summary.calls") == 2

    def test_merge_plain_dict(self):
        stats = SolveStats()
        stats.merge({"grounding": {"rules": 6}})
        stats.merge({"grounding": {"rules": 6}})
        assert stats.get_path("grounding.rules") == 12

    def test_merge_returns_self(self):
        stats = SolveStats()
        assert stats.merge({"a": 1}) is stats

    def test_to_dict_roundtrip(self):
        stats = SolveStats()
        stats.incr("solving.solvers.conflicts", 7)
        stats.set("summary.costs", (1, 2))
        data = stats.to_dict()
        assert data == {
            "solving": {"solvers": {"conflicts": 7}},
            "summary": {"costs": [1, 2]},
        }
        rebuilt = SolveStats.from_dict(data)
        assert rebuilt.to_dict() == data

    def test_to_json(self):
        stats = SolveStats({"a": {"b": 1}})
        assert json.loads(stats.to_json()) == {"a": {"b": 1}}

    def test_timer_accumulates_into_path(self):
        stats = SolveStats()
        with stats.timer("summary.times.ground"):
            pass
        with stats.timer("summary.times.ground"):
            pass
        elapsed = stats.get_path("summary.times.ground")
        assert elapsed >= 0
        assert isinstance(elapsed, float)


class TestTimerCounter:
    def test_timer_context_manager(self):
        timer = Timer()
        with timer:
            pass
        assert timer.elapsed >= 0

    def test_timer_start_stop_accumulates(self):
        timer = Timer()
        first = timer.start().stop()
        second = timer.start().stop()
        assert timer.elapsed >= first + second >= 0

    def test_timer_on_stop_callback(self):
        seen = []
        timer = Timer(on_stop=seen.append)
        with timer:
            pass
        assert len(seen) == 1 and seen[0] >= 0

    def test_counter(self):
        counter = Counter("conflicts")
        counter.incr()
        counter.incr(2)
        assert int(counter) == 3
        counter.reset()
        assert int(counter) == 0


class TestTraceSinks:
    def test_null_sink_is_noop(self):
        NULL_SINK.emit("anything", a=1)
        NULL_SINK.close()
        assert isinstance(NULL_SINK, NullTraceSink)

    def test_memory_sink_records_and_filters(self):
        sink = MemoryTraceSink()
        sink.emit("solver.model", number=1)
        sink.emit("grounder.round", round=1)
        sink.emit("solver.model", number=2)
        assert [e.name for e in sink.events] == [
            "solver.model", "grounder.round", "solver.model",
        ]
        assert [e.payload["number"] for e in sink.named("solver.model")] == [1, 2]

    def test_jsonlines_sink_on_stream(self):
        stream = io.StringIO()
        sink = JsonLinesTraceSink(stream)
        sink.emit("solver.model", number=1, atoms=4)
        sink.close()  # borrowed stream: flushed, not closed
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["event"] == "solver.model"
        assert record["number"] == 1 and record["atoms"] == 4
        assert record["t"] >= 0

    def test_jsonlines_sink_on_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonLinesTraceSink(path) as sink:
            sink.emit("a", x=1)
            sink.emit("b", y=2)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["event"] for r in records] == ["a", "b"]

    def test_human_sink_format(self):
        stream = io.StringIO()
        sink = HumanTraceSink(stream)
        sink.emit("solver.model", number=1)
        sink.close()
        line = stream.getvalue()
        assert "solver.model" in line and "number=1" in line

    def test_trace_event_str(self):
        event = TraceEvent("grounder.done", 0.25, {"rules": 6})
        assert "grounder.done" in str(event) and "rules=6" in str(event)

    def test_open_trace_dispatch(self, tmp_path):
        assert open_trace(None) is NULL_SINK
        assert open_trace("") is NULL_SINK
        assert isinstance(open_trace("-"), HumanTraceSink)
        sink = open_trace(str(tmp_path / "t.jsonl"))
        assert isinstance(sink, JsonLinesTraceSink)
        sink.close()


class TestFormatStatistics:
    def test_empty_tree_renders_empty(self):
        assert format_statistics(SolveStats()) == ""

    def test_full_tree_renders_clingo_style(self):
        stats = SolveStats({
            "grounding": {"rules": 6, "rules_nonground": 6, "atoms": 7,
                          "instantiations": 7, "rounds": 3},
            "solving": {"variables": 9, "unfounded_checks": 2, "loop_nogoods": 4,
                        "solvers": {"choices": 10, "conflicts": 3,
                                    "propagations": 99, "restarts": 1,
                                    "learnt": 3}},
            "summary": {"calls": 2, "models": {"enumerated": 5, "optimal": 1},
                        "times": {"ground": 0.5, "solve": 1.0, "total": 1.5},
                        "costs": [4, 2]},
        })
        text = format_statistics(stats)
        assert "Models       : 5 (Optimal: 1)" in text
        assert "Calls        : 2" in text
        assert "Optimization : 4 2" in text
        assert "Time         : 1.500s (Ground: 0.500s Solve: 1.000s)" in text
        assert "Rules        : 6 (non-ground: 6)" in text
        assert "Grounding    : 7 instantiations over 3 rounds" in text
        assert "Variables    : 9" in text
        assert "Choices      : 10" in text
        assert "Conflicts    : 3 (Restarts: 1)" in text
        assert "Propagations : 99" in text
        assert "Learnt       : 3 nogoods" in text
        assert "Stability    : 2 unfounded checks, 4 loop nogoods" in text

    def test_accepts_plain_dict(self):
        text = format_statistics({"summary": {"calls": 1}})
        assert "Calls" in text

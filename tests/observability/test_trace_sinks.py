"""Trace-sink hardening: non-JSON-safe payloads, flushing, formats."""

import io
import json

import pytest

from repro.observability import (
    ChromeTraceSink,
    HumanTraceSink,
    JsonLinesTraceSink,
    NULL_SINK,
    open_trace,
)


class TestJsonLinesHardening:
    def test_non_string_like_values_coerce_via_default_str(self):
        stream = io.StringIO()
        sink = JsonLinesTraceSink(stream)
        sink.emit("event", value={1, 2}.__class__, obj=object())
        record = json.loads(stream.getvalue())
        assert record["event"] == "event"
        # values went through default=str, not an exception
        assert isinstance(record["value"], str)

    def test_unserializable_payload_degrades_to_repr(self):
        stream = io.StringIO()
        sink = JsonLinesTraceSink(stream)
        # non-string dict keys make json.dumps raise TypeError even with
        # default=str; the sink must not blow up mid-solve
        sink.emit("event", mapping={(1, 2): "tuple-keyed"})
        record = json.loads(stream.getvalue())
        assert record["event"] == "event"
        assert "payload_repr" in record
        assert "tuple-keyed" in record["payload_repr"]

    def test_self_referencing_payload_degrades_to_repr(self):
        loop = []
        loop.append(loop)
        stream = io.StringIO()
        JsonLinesTraceSink(stream).emit("event", loop=loop)
        record = json.loads(stream.getvalue())
        assert "payload_repr" in record

    def test_every_event_is_flushed(self):
        class CountingStream(io.StringIO):
            flushes = 0

            def flush(self):
                type(self).flushes += 1
                super().flush()

        stream = CountingStream()
        sink = JsonLinesTraceSink(stream)
        before = stream.flushes
        sink.emit("one")
        sink.emit("two")
        assert stream.flushes >= before + 2

    def test_human_sink_flushes_per_event(self):
        class CountingStream(io.StringIO):
            flushes = 0

            def flush(self):
                type(self).flushes += 1
                super().flush()

        stream = CountingStream()
        sink = HumanTraceSink(stream)
        before = stream.flushes
        sink.emit("solver.model", number=1)
        assert stream.flushes >= before + 1
        assert "solver.model" in stream.getvalue()


class TestOpenTrace:
    def test_empty_spec_is_null_sink(self):
        assert open_trace(None) is NULL_SINK
        assert open_trace("") is NULL_SINK

    def test_jsonl_default(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = open_trace(str(path))
        assert isinstance(sink, JsonLinesTraceSink)
        sink.close()

    def test_chrome_format(self, tmp_path):
        path = tmp_path / "t.json"
        sink = open_trace(str(path), format="chrome")
        assert isinstance(sink, ChromeTraceSink)
        sink.close()
        json.loads(path.read_text())

    def test_dash_is_human_regardless_of_format(self):
        assert isinstance(open_trace("-", format="chrome"), HumanTraceSink)

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            open_trace(str(tmp_path / "t"), format="svg")


class TestSequenceNumbers:
    def test_seq_is_monotonic_per_sink(self):
        stream = io.StringIO()
        sink = JsonLinesTraceSink(stream)
        for number in range(5):
            sink.emit("solver.model", number=number)
        records = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        assert [r["seq"] for r in records] == list(range(5))

    def test_seq_survives_payload_repr_fallback(self):
        stream = io.StringIO()
        sink = JsonLinesTraceSink(stream)
        sink.emit("good", value=1)
        # tuple-keyed dict forces the repr fallback path
        sink.emit("bad", mapping={(1, 2): "x"})
        sink.emit("good", value=2)
        records = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert "payload_repr" in records[1]

    def test_independent_sinks_count_independently(self):
        first, second = io.StringIO(), io.StringIO()
        JsonLinesTraceSink(first).emit("a")
        sink = JsonLinesTraceSink(second)
        sink.emit("b")
        sink.emit("c")
        assert json.loads(first.getvalue())["seq"] == 0
        last = json.loads(second.getvalue().splitlines()[-1])
        assert last["seq"] == 1

"""Tests for the provenance package (proof DAGs and unsat cores)."""

"""Provenance surfaced through the EPA engine and the optimizer.

Blocking cores (which mitigations a violation-free result rests on),
proof-backed scenario explanations, and optimality cores (why no
cheaper plan exists) — each verified against an independent oracle:
``analyze()`` sweeps for the EPA cores, ``optimize_asp`` for the
optimizer cores.
"""

import pytest

from repro.epa import EpaEngine, FaultRef, StaticRequirement, scenario_proof
from repro.mitigation import BlockingProblem, optimality_core, optimize_asp
from repro.modeling import RelationshipType, SystemModel, standard_cps_library
from repro.provenance import assert_well_founded


def chain_model():
    library = standard_cps_library()
    model = SystemModel("chain")
    library.instantiate(model, "sensor", "s")
    library.instantiate(model, "controller", "c")
    library.instantiate(model, "actuator", "v")
    model.add_relationship("s", "c", RelationshipType.FLOW)
    model.add_relationship("c", "v", RelationshipType.FLOW)
    return model


REQ = [
    StaticRequirement(
        "rv", "err(v, K), hazardous_kind(K)", focus="v", magnitude="VH"
    ),
]


def shielded_engine():
    """Every fault mode covered by its own shield mitigation."""
    bare = EpaEngine(chain_model(), REQ)
    fault_modes = sorted({ref.fault for ref in bare._fault_pairs()})
    mitigations = {fault: ("shield_%s" % fault,) for fault in fault_modes}
    return EpaEngine(chain_model(), REQ, fault_mitigations=mitigations)


def full_deployment(engine):
    deployment = {}
    for ref in engine._fault_pairs():
        deployment.setdefault(ref.component, set()).add(
            "shield_%s" % ref.fault
        )
    return {c: sorted(ms) for c, ms in deployment.items()}


class TestBlockingCore:
    def test_none_when_violations_remain(self):
        engine = shielded_engine()
        assert engine.blocking_core({}) is None

    def test_core_blocks_and_is_minimal(self):
        engine = shielded_engine()
        deployment = full_deployment(engine)
        core = engine.blocking_core(deployment)
        assert core is not None and core
        deployed = {
            (component, mitigation)
            for component, mitigations in deployment.items()
            for mitigation in mitigations
        }
        assert set(core) <= deployed

        def as_deployment(pairs):
            result = {}
            for component, mitigation in pairs:
                result.setdefault(component, []).append(mitigation)
            return result

        # oracle: the core alone keeps every scenario safe...
        report = engine.analyze(active_mitigations=as_deployment(core))
        assert all(outcome.is_safe for outcome in report.outcomes)
        # ...and dropping any element re-admits a violation (MUS)
        for index in range(len(core)):
            rest = core[:index] + core[index + 1 :]
            report = engine.analyze(
                active_mitigations=as_deployment(rest)
            )
            assert any(not o.is_safe for o in report.outcomes)

    def test_core_queries_leave_analysis_controls_untouched(self):
        engine = shielded_engine()
        baseline = engine.analyze(max_faults=1)
        engine.blocking_core(full_deployment(engine))
        again = engine.analyze(max_faults=1)
        assert [o.key() for o in again.outcomes] == [
            o.key() for o in baseline.outcomes
        ]


class TestScenarioProof:
    def test_why_violation_bottoms_out_in_chosen_fault(self):
        engine = EpaEngine(chain_model(), REQ)
        proof = scenario_proof(engine, [FaultRef("s", "stuck_at_value")])
        violations = proof.violations()
        assert [str(a) for a in violations] == ["violated(rv)"]
        root = proof.why(violations[0])
        assert_well_founded(root)
        kinds = {node.kind for node in _walk(root)}
        assert "choice" in kinds and "fact" in kinds
        text = proof.why_text("violated(rv)")
        assert "active_fault(s,stuck_at_value)" in text
        assert "via" in text  # origins rendered

    def test_why_not_on_safe_scenario(self):
        engine = EpaEngine(chain_model(), REQ)
        proof = scenario_proof(engine, [])
        assert proof.violations() == []
        answer = proof.why_not("violated(rv)")
        assert answer.known
        assert "absent" in proof.why_not_text("violated(rv)")

    def test_prove_scenario_method_delegates(self):
        engine = EpaEngine(chain_model(), REQ)
        proof = engine.prove_scenario([FaultRef("s", "stuck_at_value")])
        assert proof.why("violated(rv)").atom.predicate == "violated"

    def test_mitigated_scenario_has_no_violation(self):
        engine = shielded_engine()
        deployment = {"s": ["shield_stuck_at_value"]}
        proof = engine.prove_scenario(
            [FaultRef("s", "stuck_at_value")], deployment
        )
        # the fault is suppressed: it never activates, nothing violates
        assert proof.violations() == []
        answer = proof.why_not("active_fault(s, stuck_at_value)")
        assert answer.known


class TestOptimalityCore:
    def test_core_names_the_forcing_scenarios(self):
        problem = BlockingProblem()
        problem.add_mitigation("m1", 3)
        problem.add_mitigation("m2", 2)
        problem.add_mitigation("m3", 5)
        problem.add_scenario("s1", ["m1"])
        problem.add_scenario("s2", ["m2"])
        problem.add_scenario("s3", ["m1", "m3"])  # free given m1
        plan = optimize_asp(problem)
        core = optimality_core(problem, plan.cost)
        assert core == ["s1", "s2"]

    def test_none_when_cost_not_optimal(self):
        problem = BlockingProblem()
        problem.add_mitigation("m1", 1)
        problem.add_scenario("s1", ["m1"])
        assert optimality_core(problem, 2) is None

    def test_mus_against_relaxed_problems(self):
        problem = BlockingProblem()
        problem.add_mitigation("cheap", 1)
        problem.add_mitigation("costly", 4)
        problem.add_scenario("easy", ["cheap", "costly"])
        problem.add_scenario("hard", ["costly"])
        plan = optimize_asp(problem)
        core = optimality_core(problem, plan.cost)
        assert core is not None
        # oracle: dropping any core scenario admits a cheaper plan
        for scenario in core:
            relaxed = BlockingProblem()
            relaxed.mitigation_costs = dict(problem.mitigation_costs)
            relaxed.scenario_blockers = {
                s: set(b)
                for s, b in problem.scenario_blockers.items()
                if s != scenario
            }
            relaxed.scenario_risks = dict(problem.scenario_risks)
            assert optimize_asp(relaxed).cost < plan.cost


def _walk(root):
    seen = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        stack.extend(node.children)

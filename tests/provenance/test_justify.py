"""Proof DAGs on tight programs: kinds, rendering, serialization."""

import pytest

from repro.asp import Control, atom
from repro.provenance import (
    ProvenanceError,
    assert_well_founded,
    format_proof,
    format_why_not,
    iter_nodes,
    parse_atom,
    proof_to_dict,
)

PROGRAM = """
base.
derived :- base.
blocked :- base, not guard.
guard.
{ pick }.
chained :- pick.
"""


def justified_model(text, provenance=True, **solve):
    control = Control(text, provenance=provenance)
    models = control.solve(**solve)
    assert models
    return control, models[0], control.justify(models[0])


class TestProofKinds:
    def test_fact_is_a_leaf(self):
        _, _, justifier = justified_model(PROGRAM)
        node = justifier.why(atom("base"))
        assert node.kind == "fact"
        assert node.is_leaf()
        assert node.depth == 0

    def test_rule_node_has_premise_children(self):
        _, _, justifier = justified_model(PROGRAM)
        node = justifier.why(atom("derived"))
        assert node.kind == "rule"
        assert [child.atom for child in node.children] == [atom("base")]
        assert node.depth == 1

    def test_negative_premise_recorded(self):
        # the negated atom must be derivable ({ b }) or the grounder
        # simplifies the literal away before the justifier sees it
        control = Control("{ b }. a :- not b.", provenance=True)
        model = next(
            m for m in control.solve() if atom("b") not in m.atoms
        )
        node = control.justify(model).why(atom("a"))
        assert node.negative == (atom("b"),)

    def test_choice_atom_is_chosen_kind(self):
        control = Control("{ pick }. out :- pick.", provenance=True)
        models = control.solve()
        with_pick = next(m for m in models if atom("pick") in m.atoms)
        justifier = control.justify(with_pick)
        assert justifier.why(atom("pick")).kind == "choice"
        assert justifier.why(atom("out")).children[0].kind == "choice"

    def test_origin_carries_rule_and_binding(self):
        control = Control(
            "p(1). p(2). q(X) :- p(X).", provenance=True
        )
        model = control.solve()[0]
        justifier = control.justify(model)
        node = justifier.why(parse_atom("q(2)"))
        assert node.origin is not None
        assert node.origin.substitution()["X"].value == 2

    def test_provenance_off_proofs_still_work_without_origins(self):
        control = Control("p(1). q(X) :- p(X).", provenance=False)
        model = control.solve()[0]
        node = control.justify(model).why(parse_atom("q(1)"))
        assert node.origin is None
        assert node.children[0].atom == parse_atom("p(1)")


class TestQueries:
    def test_why_on_absent_atom_raises(self):
        _, _, justifier = justified_model("a.")
        with pytest.raises(ProvenanceError):
            justifier.why(atom("missing"))

    def test_why_not_on_present_atom_raises(self):
        _, _, justifier = justified_model("a.")
        with pytest.raises(ProvenanceError):
            justifier.why_not(atom("a"))

    def test_why_not_reports_blocking_negative(self):
        control = Control(
            "{ guard }. base. blocked :- base, not guard.",
            provenance=True,
        )
        model = next(
            m for m in control.solve() if atom("guard") in m.atoms
        )
        answer = control.justify(model).why_not(atom("blocked"))
        assert answer.known
        assert any(
            atom("guard") in failed.blocking_neg
            for failed in answer.supports
        )

    def test_why_not_reports_missing_positive(self):
        control = Control("a :- b. { b }.", provenance=True)
        model = next(
            m for m in control.solve() if atom("a") not in m.atoms
        )
        answer = control.justify(model).why_not(atom("a"))
        assert any(
            atom("b") in failed.missing_pos for failed in answer.supports
        )
        assert "needs b" in format_why_not(answer)

    def test_why_not_unknown_atom(self):
        _, _, justifier = justified_model("a.")
        answer = justifier.why_not(atom("never_heard_of"))
        assert not answer.known
        assert "never derivable" in format_why_not(answer)

    def test_not_a_stable_model_raises(self):
        control = Control("a :- b.", provenance=True)
        control.ground()
        justifier = control.justify([atom("a")])
        with pytest.raises(ProvenanceError, match="unfounded"):
            justifier.why(atom("a"))


class TestRendering:
    def test_format_proof_mentions_rules_and_absences(self):
        _, model, justifier = justified_model(PROGRAM)
        assert atom("blocked") not in model.atoms
        text = format_proof(justifier.why(atom("derived")))
        assert "derived" in text and "base" in text and "[fact]" in text
        negative = Control("{ b }. a :- not b.", provenance=True)
        m = next(
            model
            for model in negative.solve()
            if atom("b") not in model.atoms
        )
        text = format_proof(negative.justify(m).why(atom("a")))
        assert "not b  [absent]" in text

    def test_proof_to_dict_round_trip(self):
        _, _, justifier = justified_model(PROGRAM)
        payload = proof_to_dict(justifier.why(atom("derived")))
        assert payload["root"] == "derived"
        assert payload["depth"] == 1
        assert set(payload["nodes"]) == {"derived", "base"}
        assert payload["nodes"]["derived"]["children"] == ["base"]
        assert payload["nodes"]["base"]["kind"] == "fact"

    def test_iter_nodes_unique(self):
        # diamond: d supported by b and c, both supported by a
        control = Control(
            "a. b :- a. c :- a. d :- b, c.", provenance=True
        )
        model = control.solve()[0]
        root = control.justify(model).why(atom("d"))
        atoms = [str(node.atom) for node in iter_nodes(root)]
        assert sorted(atoms) == ["a", "b", "c", "d"]
        assert_well_founded(root)


class TestParseAtom:
    def test_parse_plain_and_with_arguments(self):
        assert parse_atom("a") == atom("a")
        assert parse_atom("p(1, x).") == atom("p", 1, "x")

    def test_parse_rejects_rules_and_non_ground(self):
        with pytest.raises(ProvenanceError):
            parse_atom("a :- b")
        with pytest.raises(ProvenanceError):
            parse_atom("p(X)")
        with pytest.raises(ProvenanceError):
            parse_atom("")

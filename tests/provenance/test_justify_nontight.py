"""Well-foundedness on non-tight programs (positive loops).

The acceptance bar of the provenance subsystem: every atom of every
stable model of a non-tight program has an *acyclic* proof whose leaves
are facts or chosen atoms — atoms on a positive loop are never
justified through the loop itself — and the justifier agrees with the
reference enumerator in :mod:`repro.asp.naive` about what the stable
models are.  Plus the zero-cost-off contract: with ``provenance=False``
the ground program renders byte-identically and solves identically.
"""

import pytest

from repro.asp import Control, atom
from repro.asp.grounder import Grounder
from repro.asp.naive import stable_models
from repro.asp.parser import parse_program
from repro.provenance import (
    ProvenanceError,
    assert_well_founded,
    iter_nodes,
)

LOOP = """
{ seed }.
a :- seed.
a :- b.
b :- a.
"""

MUTUAL = """
p :- q, not r.
q :- p, not r.
{ r }.
p :- start.
{ start }.
"""

# the shape of the EPA reachability rules: err propagates over a cycle
CYCLE_REACH = """
edge(1, 2). edge(2, 3). edge(3, 1).
{ fail(N) : node(N) }.
node(1). node(2). node(3).
err(N) :- fail(N).
err(M) :- err(N), edge(N, M).
"""

NONTIGHT_PROGRAMS = [LOOP, MUTUAL, CYCLE_REACH]


def proofs_for_all_models(text):
    control = Control(text, provenance=True)
    models = control.solve()
    assert models, "programs under test must be satisfiable"
    for model in models:
        justifier = control.justify(model)
        for model_atom in model.atoms:
            yield model, justifier.why(model_atom)


class TestWellFoundedness:
    @pytest.mark.parametrize("text", NONTIGHT_PROGRAMS)
    def test_every_proof_is_acyclic_with_grounded_leaves(self, text):
        for _model, node in proofs_for_all_models(text):
            assert_well_founded(node)
            for leaf in iter_nodes(node):
                if leaf.is_leaf():
                    assert leaf.kind in ("fact", "choice")

    def test_loop_atom_not_justified_through_the_loop(self):
        control = Control(LOOP, provenance=True)
        model = next(
            m for m in control.solve() if atom("seed") in m.atoms
        )
        justifier = control.justify(model)
        # a's only well-founded support is seed, not the a<->b loop
        node = justifier.why(atom("a"))
        assert [c.atom for c in node.children] == [atom("seed")]
        # b is supported by a, which bottoms out in seed
        b_node = justifier.why(atom("b"))
        assert [c.atom for c in b_node.children] == [atom("a")]
        assert b_node.depth > node.depth

    def test_unfounded_loop_interpretation_rejected(self):
        control = Control("a :- b. b :- a.", provenance=True)
        control.ground()
        justifier = control.justify([atom("a"), atom("b")])
        with pytest.raises(ProvenanceError, match="unfounded"):
            justifier.why(atom("a"))

    @pytest.mark.parametrize("text", NONTIGHT_PROGRAMS)
    def test_models_cross_checked_against_naive(self, text):
        control = Control(text, provenance=True)
        solver_models = {frozenset(m.atoms) for m in control.solve()}
        reference = set(stable_models(control.ground()))
        assert solver_models == reference
        # and every reference model is fully justifiable
        for model in reference:
            justifier = control.justify(model)
            for model_atom in model:
                assert_well_founded(justifier.why(model_atom))


class TestZeroCostOff:
    @pytest.mark.parametrize("text", NONTIGHT_PROGRAMS + ["p(1..3). q(X) :- p(X), not r(X). { r(2) }."])
    def test_ground_text_byte_identical(self, text):
        program = parse_program(text)
        plain = Grounder(program).ground()
        tracked = Grounder(parse_program(text), provenance=True).ground()
        assert str(plain) == str(tracked)
        assert plain.origins is None
        assert tracked.origins is not None
        assert len(tracked.origins) == len(tracked.rules)

    @pytest.mark.parametrize("text", NONTIGHT_PROGRAMS)
    def test_solve_results_identical(self, text):
        plain = {
            frozenset(m.atoms)
            for m in Control(text, provenance=False).solve()
        }
        tracked = {
            frozenset(m.atoms)
            for m in Control(text, provenance=True).solve()
        }
        assert plain == tracked

    def test_off_path_statistics_do_not_mention_provenance(self):
        control = Control(LOOP, provenance=False)
        control.solve()
        grounding = control.statistics.get_path("grounding")
        assert "provenance_rules" not in (grounding or {})

    def test_on_path_statistics_count_recorded_rules(self):
        control = Control(LOOP, provenance=True)
        control.solve()
        ground = control.ground()
        recorded = control.statistics.get_path("grounding.provenance_rules")
        assert recorded == len(ground.origins) == len(ground.rules)

"""Assumption-level unsat cores, from the SAT layer up to MUS checks.

The MUS property is verified directly: the minimized core is
unsatisfiable and *every proper subset* of it is satisfiable.
"""

import itertools

import pytest

from repro.asp import Control, atom
from repro.asp.sat import Solver as SatSolver
from repro.provenance import assumption_core, minimize_core


class TestSatLayerCores:
    def test_no_core_before_any_solve(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.last_core() is None

    def test_sat_result_has_no_core(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[1]) is not None
        assert solver.last_core() is None

    def test_conflicting_assumptions_yield_core(self):
        solver = SatSolver()
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve(assumptions=[1, -3]) is None
        core = solver.last_core()
        assert core is not None
        assert set(core) <= {1, -3}
        assert core  # non-empty: the instance alone is satisfiable

    def test_globally_unsat_gives_empty_core(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve(assumptions=[2]) is None
        assert solver.last_core() == []

    def test_directly_contradictory_assumptions(self):
        solver = SatSolver()
        solver.add_clause([1, 2])  # register the variables
        assert solver.solve(assumptions=[1, -1]) is None
        core = solver.last_core()
        assert set(core) == {1, -1}

    def test_irrelevant_assumptions_excluded(self):
        solver = SatSolver()
        solver.add_clause([-1, -2])  # 1 and 2 conflict
        solver.add_clause([3, 4])  # unrelated
        assert solver.solve(assumptions=[3, 1, 2]) is None
        core = solver.last_core()
        assert 3 not in core
        assert set(core) == {1, 2}


class TestControlCores:
    def test_no_core_unless_model_free(self):
        control = Control("{ a }.")
        control.solve()
        assert control.unsat_core is None

    def test_core_over_choice_assumptions(self):
        control = Control("{ a }. { b }. :- a, b.")
        a, b = atom("a"), atom("b")
        models = control.solve(assumptions=[(a, True), (b, True)])
        assert models == []
        core = control.unsat_core
        assert core is not None
        assert set(core) <= {(a, True), (b, True)}
        assert len(core) == 2

    def test_underivable_positive_assumption_in_core(self):
        control = Control("fact.")
        ghost = atom("ghost")
        assert control.solve(assumptions=[(ghost, True)]) == []
        assert control.unsat_core == [(ghost, True)]

    def test_globally_unsat_empty_core(self):
        control = Control("a. :- a.")
        assert control.solve(assumptions=[(atom("b"), True)]) == []
        assert control.unsat_core == []

    def test_core_includes_external_assignments(self):
        control = Control("p :- q. :- p.")
        control.add_external("q")
        control.assign_external("q", value=True)
        assert control.solve() == []
        assert (atom("q"), True) in (control.unsat_core or [])

    def test_optimize_records_core(self):
        control = Control("{ a }. :- not a. :~ a. [1@1]")
        assert control.optimize(assumptions=[(atom("a"), False)]) == []
        assert control.unsat_core == [(atom("a"), False)]


class TestMinimization:
    def test_minimize_core_drops_redundancy(self):
        # UNSAT iff both 'x' and 'y' present; 'pad' entries are noise
        def is_unsat(subset):
            return "x" in subset and "y" in subset

        core = minimize_core(is_unsat, ["pad1", "x", "pad2", "y", "pad3"])
        assert core == ["x", "y"]

    def test_minimize_core_handles_empty(self):
        assert minimize_core(lambda s: True, []) == []

    def test_mus_property_every_proper_subset_sat(self):
        # r needs one of a/b blocked AND one of c/d blocked; assuming
        # all four off is unsat, the MUS mixes one from each pair
        control = Control(
            """
            { a; b; c; d }.
            ok1 :- a.  ok1 :- b.
            ok2 :- c.  ok2 :- d.
            :- not ok1.  :- not ok2.
            """
        )
        assumptions = [
            (atom(name), False) for name in ("a", "b", "c", "d")
        ]
        core = assumption_core(control, assumptions)
        assert core is not None and core != []
        # core itself is UNSAT...
        assert not control.is_satisfiable(core)
        # ...and every proper subset is SAT
        for size in range(len(core)):
            for subset in itertools.combinations(core, size):
                assert control.is_satisfiable(list(subset))

    def test_assumption_core_none_when_satisfiable(self):
        control = Control("{ a }.")
        assert assumption_core(control, [(atom("a"), True)]) is None

    def test_assumption_core_unminimized(self):
        control = Control("{ a }. { b }. :- a.")
        core = assumption_core(
            control,
            [(atom("a"), True), (atom("b"), True)],
            minimize=False,
        )
        assert core is not None
        assert (atom("a"), True) in core


class TestMetrics:
    def test_core_sizes_observed(self):
        from repro.observability.metrics import get_registry

        registry = get_registry()
        initial = registry.histogram(
            "repro_provenance_core_size", stage="initial"
        )
        minimized = registry.histogram(
            "repro_provenance_core_size", stage="minimized"
        )
        before = (initial.count, minimized.count)
        control = Control("{ a }. :- a.")
        assert assumption_core(control, [(atom("a"), True)]) is not None
        assert initial.count == before[0] + 1
        assert minimized.count == before[1] + 1

    def test_proof_depth_observed(self):
        from repro.observability.metrics import get_registry

        histogram = get_registry().histogram("repro_provenance_proof_depth")
        before = histogram.count
        control = Control("a. b :- a.", provenance=True)
        model = control.solve()[0]
        control.justify(model).why(atom("b"))
        assert histogram.count == before + 1

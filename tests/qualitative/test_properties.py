"""Property-based tests of qualitative-reasoning invariants."""

from hypothesis import given, settings, strategies as st

from repro.qualitative import (
    QualitativeSimulator,
    QuantitySpace,
    Sign,
    make_state,
    state_dict,
)

LEVELS = QuantitySpace("level", ("l0", "l1", "l2", "l3", "l4"))


@settings(max_examples=60, deadline=None)
@given(
    st.sampled_from(LEVELS.labels),
    st.integers(min_value=1, max_value=6),
)
def test_monotone_dynamics_give_monotone_trajectories(initial, horizon):
    """Constant PLUS dynamics: labels never decrease along any run."""
    simulator = QualitativeSimulator(
        {"x": LEVELS}, lambda s: {"x": Sign.PLUS}
    )
    for trajectory in simulator.simulate({"x": initial}, horizon):
        ranks = [LEVELS.index(l) for l in trajectory.labels("x")]
        assert all(b >= a for a, b in zip(ranks, ranks[1:]))


@settings(max_examples=60, deadline=None)
@given(
    st.sampled_from(LEVELS.labels),
    st.integers(min_value=1, max_value=5),
)
def test_continuity_one_step_per_tick(initial, horizon):
    """Qualitative continuity: a variable moves at most one label per
    step, whatever the (possibly ambiguous) dynamics."""
    simulator = QualitativeSimulator(
        {"x": LEVELS}, lambda s: {"x": Sign.AMBIGUOUS}
    )
    for trajectory in simulator.simulate({"x": initial}, horizon):
        ranks = [LEVELS.index(l) for l in trajectory.labels("x")]
        assert all(abs(b - a) <= 1 for a, b in zip(ranks, ranks[1:]))


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(LEVELS.labels), st.integers(min_value=0, max_value=8))
def test_reachable_is_monotone_in_horizon(initial, horizon):
    simulator = QualitativeSimulator(
        {"x": LEVELS}, lambda s: {"x": Sign.AMBIGUOUS}
    )
    shorter = simulator.reachable({"x": initial}, horizon)
    longer = simulator.reachable({"x": initial}, horizon + 1)
    assert shorter <= longer


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(LEVELS.labels))
def test_unbounded_reachability_with_ambiguity_is_everything(initial):
    """AMBIGUOUS dynamics eventually wander the whole finite space."""
    simulator = QualitativeSimulator(
        {"x": LEVELS}, lambda s: {"x": Sign.AMBIGUOUS}
    )
    reachable = simulator.reachable({"x": initial})
    labels = {state_dict(s)["x"] for s in reachable}
    assert labels == set(LEVELS.labels)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.sampled_from([Sign.PLUS, Sign.MINUS, Sign.ZERO]),
        min_size=1,
        max_size=6,
    ),
    st.sampled_from(LEVELS.labels),
)
def test_simulation_deterministic_under_signed_dynamics(plan, initial):
    """Non-ambiguous dynamics yield exactly one trajectory."""
    step = {"i": 0}

    def scripted(state):
        index = min(step["i"], len(plan) - 1)
        step["i"] += 1
        return {"x": plan[index]}

    simulator = QualitativeSimulator({"x": LEVELS}, scripted)
    trajectories = simulator.simulate({"x": initial}, len(plan))
    assert len(trajectories) == 1

"""Unit tests for sign algebra and influence graphs."""

import pytest
from hypothesis import given, strategies as st

from repro.qualitative import (
    Influence,
    InfluenceGraph,
    Sign,
    sign_add,
    sign_multiply,
    sign_sum,
)

SIGNS = [Sign.MINUS, Sign.ZERO, Sign.PLUS, Sign.AMBIGUOUS]


class TestSignAlgebra:
    def test_addition_identity(self):
        for sign in SIGNS:
            assert sign_add(sign, Sign.ZERO) is sign
            assert sign_add(Sign.ZERO, sign) is sign

    def test_addition_same_sign(self):
        assert sign_add(Sign.PLUS, Sign.PLUS) is Sign.PLUS
        assert sign_add(Sign.MINUS, Sign.MINUS) is Sign.MINUS

    def test_opposite_signs_ambiguous(self):
        assert sign_add(Sign.PLUS, Sign.MINUS) is Sign.AMBIGUOUS

    def test_ambiguous_absorbs(self):
        for sign in SIGNS:
            assert sign_add(Sign.AMBIGUOUS, sign) is Sign.AMBIGUOUS

    def test_multiplication_table(self):
        assert sign_multiply(Sign.PLUS, Sign.PLUS) is Sign.PLUS
        assert sign_multiply(Sign.PLUS, Sign.MINUS) is Sign.MINUS
        assert sign_multiply(Sign.MINUS, Sign.MINUS) is Sign.PLUS
        assert sign_multiply(Sign.ZERO, Sign.PLUS) is Sign.ZERO
        assert sign_multiply(Sign.AMBIGUOUS, Sign.PLUS) is Sign.AMBIGUOUS

    def test_negation(self):
        assert -Sign.PLUS is Sign.MINUS
        assert -Sign.MINUS is Sign.PLUS
        assert -Sign.ZERO is Sign.ZERO
        assert -Sign.AMBIGUOUS is Sign.AMBIGUOUS

    def test_sign_of_value(self):
        assert Sign.of(3.0) is Sign.PLUS
        assert Sign.of(-0.5) is Sign.MINUS
        assert Sign.of(0.0) is Sign.ZERO
        assert Sign.of(0.05, tolerance=0.1) is Sign.ZERO

    def test_sign_sum(self):
        assert sign_sum([]) is Sign.ZERO
        assert sign_sum([Sign.PLUS, Sign.ZERO, Sign.PLUS]) is Sign.PLUS
        assert sign_sum([Sign.PLUS, Sign.MINUS]) is Sign.AMBIGUOUS

    @given(st.sampled_from(SIGNS), st.sampled_from(SIGNS))
    def test_addition_commutative(self, a, b):
        assert sign_add(a, b) is sign_add(b, a)

    @given(st.sampled_from(SIGNS), st.sampled_from(SIGNS), st.sampled_from(SIGNS))
    def test_addition_associative(self, a, b, c):
        assert sign_add(sign_add(a, b), c) is sign_add(a, sign_add(b, c))

    @given(st.sampled_from(SIGNS), st.sampled_from(SIGNS))
    def test_multiplication_commutative(self, a, b):
        assert sign_multiply(a, b) is sign_multiply(b, a)


class TestInfluence:
    def test_m_plus_propagates_direction(self):
        influence = Influence("inflow", "level", Sign.PLUS)
        assert influence.propagate(Sign.PLUS) is Sign.PLUS
        assert influence.propagate(Sign.MINUS) is Sign.MINUS

    def test_m_minus_inverts_direction(self):
        influence = Influence("outflow", "level", Sign.MINUS)
        assert influence.propagate(Sign.PLUS) is Sign.MINUS

    def test_polarity_must_be_signed(self):
        with pytest.raises(ValueError):
            Influence("a", "b", Sign.ZERO)


class TestInfluenceGraph:
    def _tank(self):
        graph = InfluenceGraph()
        graph.m_plus("inflow", "level")
        graph.m_minus("outflow", "level")
        graph.m_plus("level", "pressure")
        return graph

    def test_propagation_chain(self):
        state = self._tank().propagate({"inflow": Sign.PLUS})
        assert state["level"] is Sign.PLUS
        assert state["pressure"] is Sign.PLUS

    def test_inverse_influence(self):
        state = self._tank().propagate({"outflow": Sign.PLUS})
        assert state["level"] is Sign.MINUS

    def test_conflicting_influences_ambiguous(self):
        state = self._tank().propagate(
            {"inflow": Sign.PLUS, "outflow": Sign.PLUS}
        )
        assert state["level"] is Sign.AMBIGUOUS
        assert state["pressure"] is Sign.AMBIGUOUS

    def test_no_disturbance_all_zero(self):
        state = self._tank().propagate({})
        assert all(sign is Sign.ZERO for sign in state.values())

    def test_cyclic_graph_reaches_fixpoint(self):
        graph = InfluenceGraph()
        graph.m_plus("a", "b")
        graph.m_plus("b", "a")
        state = graph.propagate({"a": Sign.PLUS})
        assert state["a"] is Sign.PLUS
        assert state["b"] is Sign.PLUS

    def test_negative_feedback_loop(self):
        graph = InfluenceGraph()
        graph.m_plus("a", "b")
        graph.m_minus("b", "a")
        state = graph.propagate({"a": Sign.PLUS})
        # disturbance + negative feedback: direction becomes ambiguous
        assert state["a"] is Sign.AMBIGUOUS

    def test_quantities_listed_in_insertion_order(self):
        graph = self._tank()
        assert graph.quantities == ("inflow", "level", "outflow", "pressure")

    def test_len_counts_influences(self):
        assert len(self._tank()) == 3

"""Unit tests for QSIM-lite simulation and numeric abstraction."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.qualitative import (
    QualitativeSimulator,
    QuantitySpace,
    QuantitySpaceError,
    Sign,
    abstraction_error,
    directions,
    episodes,
    landmark_candidates,
    make_state,
    qualitative_signature,
    quantize,
    state_dict,
    stationary_points,
    tank_level_scale,
)

LEVEL = QuantitySpace("level", ("low", "normal", "high"))


def rising_dynamics(state):
    return {"level": Sign.PLUS}


class TestSimulator:
    def test_deterministic_rise_saturates(self):
        simulator = QualitativeSimulator({"level": LEVEL}, rising_dynamics)
        trajectories = simulator.simulate({"level": "low"}, horizon=4)
        assert len(trajectories) == 1
        assert trajectories[0].labels("level") == [
            "low", "normal", "high", "high", "high",
        ]

    def test_steady_state(self):
        simulator = QualitativeSimulator(
            {"level": LEVEL}, lambda s: {"level": Sign.ZERO}
        )
        trajectory = simulator.simulate({"level": "normal"}, horizon=3)[0]
        assert trajectory.labels("level") == ["normal"] * 4

    def test_ambiguous_branches(self):
        simulator = QualitativeSimulator(
            {"level": LEVEL}, lambda s: {"level": Sign.AMBIGUOUS}
        )
        successors = simulator.successors(make_state({"level": "normal"}))
        values = {state_dict(s)["level"] for s in successors}
        assert values == {"low", "normal", "high"}

    def test_state_dependent_dynamics(self):
        def bang_bang(state):
            if state["level"] == "high":
                return {"level": Sign.MINUS}
            return {"level": Sign.PLUS}

        simulator = QualitativeSimulator({"level": LEVEL}, bang_bang)
        trajectory = simulator.simulate({"level": "normal"}, horizon=3)[0]
        assert trajectory.labels("level") == ["normal", "high", "normal", "high"]

    def test_reachability(self):
        simulator = QualitativeSimulator({"level": LEVEL}, rising_dynamics)
        reachable = simulator.reachable({"level": "low"})
        labels = {state_dict(s)["level"] for s in reachable}
        assert labels == {"low", "normal", "high"}

    def test_can_reach_predicate(self):
        simulator = QualitativeSimulator({"level": LEVEL}, rising_dynamics)
        assert simulator.can_reach(
            {"level": "low"}, lambda s: s["level"] == "high"
        )
        falling = QualitativeSimulator(
            {"level": LEVEL}, lambda s: {"level": Sign.MINUS}
        )
        assert not falling.can_reach(
            {"level": "normal"}, lambda s: s["level"] == "high"
        )

    def test_multi_variable_product(self):
        simulator = QualitativeSimulator(
            {"a": LEVEL, "b": LEVEL},
            lambda s: {"a": Sign.PLUS, "b": Sign.MINUS},
        )
        trajectory = simulator.simulate(
            {"a": "low", "b": "high"}, horizon=2
        )[0]
        assert trajectory.labels("a") == ["low", "normal", "high"]
        assert trajectory.labels("b") == ["high", "normal", "low"]

    def test_invalid_initial_state_raises(self):
        simulator = QualitativeSimulator({"level": LEVEL}, rising_dynamics)
        with pytest.raises(QuantitySpaceError):
            simulator.simulate({"level": "bogus"}, horizon=1)
        with pytest.raises(QuantitySpaceError):
            simulator.simulate({}, horizon=1)

    def test_trajectory_visits(self):
        simulator = QualitativeSimulator({"level": LEVEL}, rising_dynamics)
        trajectory = simulator.simulate({"level": "low"}, horizon=2)[0]
        assert trajectory.visits("level", "high")
        assert not trajectory.visits("level", "bogus") is True


class TestAbstraction:
    def test_quantize_series(self):
        space = tank_level_scale(100.0)
        labels = quantize([10.0, 50.0, 90.0, 110.0], space)
        assert labels == ["low", "normal", "high", "overflow"]

    def test_episodes_compress_runs(self):
        space = tank_level_scale(100.0)
        series = [50, 52, 54, 80, 85, 110]
        result = episodes(series, space)
        assert [e.label for e in result] == ["normal", "high", "overflow"]
        assert result[0].start == 0 and result[0].end == 2
        assert result[0].direction is Sign.PLUS

    def test_episode_durations_cover_series(self):
        space = tank_level_scale(100.0)
        series = [50.0] * 5 + [85.0] * 3
        result = episodes(series, space)
        assert sum(e.duration for e in result) == len(series)

    def test_empty_series(self):
        assert episodes([], tank_level_scale()) == []

    def test_signature(self):
        space = tank_level_scale(100.0)
        assert qualitative_signature([50, 51, 85, 84, 50], space) == [
            "normal", "high", "normal",
        ]

    def test_directions(self):
        result = directions([1.0, 2.0, 2.0, 1.0])
        assert result == [Sign.PLUS, Sign.ZERO, Sign.MINUS]

    def test_stationary_points(self):
        series = [0, 1, 2, 1, 0, 1]
        points = stationary_points(series)
        assert points == [2, 4]

    def test_landmark_candidates_strictly_increasing(self):
        series = list(np.linspace(0, 10, 50))
        landmarks = landmark_candidates(series, 3)
        assert len(landmarks) == 3
        assert all(b > a for a, b in zip(landmarks, landmarks[1:]))

    def test_landmark_candidates_degenerate_data(self):
        landmarks = landmark_candidates([5.0] * 10, 2)
        assert len(landmarks) == 2
        assert landmarks[1] > landmarks[0]

    def test_landmark_candidates_validation(self):
        with pytest.raises(ValueError):
            landmark_candidates([1.0, 2.0], 0)
        with pytest.raises(ValueError):
            landmark_candidates([1.0], 2)

    def test_abstraction_error_in_unit_range(self):
        space = tank_level_scale(100.0)
        series = np.linspace(0, 120, 200)
        error = abstraction_error(series, space)
        assert 0.0 <= error <= 1.0

    @given(
        st.lists(
            st.floats(min_value=0, max_value=120, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    def test_signature_never_repeats_adjacent(self, series):
        signature = qualitative_signature(series, tank_level_scale(100.0))
        assert all(a != b for a, b in zip(signature, signature[1:]))

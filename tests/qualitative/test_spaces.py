"""Unit tests for quantity spaces and qualitative values."""

import pytest
from hypothesis import given, strategies as st

from repro.qualitative import (
    QualitativeRange,
    QualitativeValue,
    QuantitySpace,
    QuantitySpaceError,
    five_level_scale,
    tank_level_scale,
    workload_scale,
)


class TestQuantitySpace:
    def test_ordering(self):
        space = five_level_scale()
        assert space.compare("VL", "VH") < 0
        assert space.compare("M", "M") == 0
        assert space.compare("H", "L") > 0

    def test_successor_predecessor(self):
        space = five_level_scale()
        assert space.successor("VL") == "L"
        assert space.successor("VH") is None
        assert space.predecessor("VL") is None
        assert space.predecessor("VH") == "H"

    def test_shift_saturates(self):
        space = five_level_scale()
        assert space.shift("M", 10) == "VH"
        assert space.shift("M", -10) == "VL"
        assert space.shift("M", 1) == "H"

    def test_between(self):
        space = five_level_scale()
        assert space.between("L", "H") == ("L", "M", "H")
        with pytest.raises(QuantitySpaceError):
            space.between("H", "L")

    def test_unknown_label_raises(self):
        with pytest.raises(QuantitySpaceError):
            five_level_scale().index("XXL")

    def test_needs_two_labels(self):
        with pytest.raises(QuantitySpaceError):
            QuantitySpace("bad", ["only"])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(QuantitySpaceError):
            QuantitySpace("bad", ["a", "a"])

    def test_landmark_count_validated(self):
        with pytest.raises(QuantitySpaceError):
            QuantitySpace("bad", ["a", "b", "c"], landmarks=[1.0])

    def test_landmarks_must_increase(self):
        with pytest.raises(QuantitySpaceError):
            QuantitySpace("bad", ["a", "b", "c"], landmarks=[2.0, 1.0])


class TestQuantization:
    def test_workload_example_from_paper(self):
        space = workload_scale()
        assert space.quantize(0.1) == "low"
        assert space.quantize(0.5) == "medium"
        assert space.quantize(0.8) == "high"
        assert space.quantize(0.99) == "overloaded"

    def test_boundary_is_half_open(self):
        space = QuantitySpace("s", ["lo", "hi"], landmarks=[5.0])
        assert space.quantize(4.999) == "lo"
        assert space.quantize(5.0) == "hi"

    def test_tank_level_scale(self):
        space = tank_level_scale(100.0)
        assert space.quantize(2.0) == "empty"
        assert space.quantize(50.0) == "normal"
        assert space.quantize(85.0) == "high"
        assert space.quantize(105.0) == "overflow"

    def test_quantize_without_landmarks_raises(self):
        with pytest.raises(QuantitySpaceError):
            five_level_scale().quantize(1.0)

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_quantize_total_on_reals(self, value):
        space = tank_level_scale()
        assert space.quantize(value) in space.labels

    @given(
        st.floats(min_value=0, max_value=200, allow_nan=False),
        st.floats(min_value=0, max_value=200, allow_nan=False),
    )
    def test_quantize_is_monotone(self, a, b):
        space = tank_level_scale()
        low, high = min(a, b), max(a, b)
        assert space.index(space.quantize(low)) <= space.index(
            space.quantize(high)
        )


class TestQualitativeValue:
    def test_comparison(self):
        space = five_level_scale()
        low = QualitativeValue(space, "L")
        high = QualitativeValue(space, "H")
        assert low < high
        assert high >= low
        assert not low > high

    def test_cross_space_comparison_rejected(self):
        a = QualitativeValue(five_level_scale(), "L")
        b = QualitativeValue(workload_scale(), "low")
        with pytest.raises(QuantitySpaceError):
            _ = a < b

    def test_invalid_label_rejected(self):
        with pytest.raises(QuantitySpaceError):
            QualitativeValue(five_level_scale(), "nope")

    def test_shift(self):
        value = QualitativeValue(five_level_scale(), "M")
        assert value.shift(1).label == "H"
        assert value.shift(-10).label == "VL"


class TestQualitativeRange:
    def test_labels(self):
        space = five_level_scale()
        r = QualitativeRange(space, "L", "H")
        assert r.labels() == ("L", "M", "H")
        assert len(r) == 3
        assert "M" in r
        assert "VH" not in r

    def test_exact(self):
        r = QualitativeRange.exact(five_level_scale(), "M")
        assert r.is_exact
        assert r.labels() == ("M",)

    def test_out_of_order_rejected(self):
        with pytest.raises(QuantitySpaceError):
            QualitativeRange(five_level_scale(), "H", "L")

    def test_widen_saturates(self):
        r = QualitativeRange.exact(five_level_scale(), "VL").widen(1)
        assert r.labels() == ("VL", "L")

    def test_intersect_and_union(self):
        space = five_level_scale()
        a = QualitativeRange(space, "VL", "M")
        b = QualitativeRange(space, "L", "VH")
        assert a.intersect(b).labels() == ("L", "M")
        assert a.union(b).labels() == space.labels

    def test_empty_intersection_raises(self):
        space = five_level_scale()
        with pytest.raises(QuantitySpaceError):
            QualitativeRange(space, "VL", "L").intersect(
                QualitativeRange(space, "H", "VH")
            )

    def test_full_range(self):
        r = QualitativeRange.full(five_level_scale())
        assert len(r) == 5

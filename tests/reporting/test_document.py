"""Tests for the markdown assessment document."""

import pytest

from repro.casestudy import (
    build_system_model,
    refined_system_model,
    static_requirements,
)
from repro.core import AssessmentPipeline
from repro.reporting import assessment_document
from repro.security import builtin_catalog


@pytest.fixture(scope="module")
def result():
    pipeline = AssessmentPipeline(
        static_requirements(), builtin_catalog(), max_faults=1
    )
    return pipeline.run(
        build_system_model(), refined_model=refined_system_model()
    )


@pytest.fixture(scope="module")
def document(result):
    return assessment_document(result)


class TestDocumentStructure:
    def test_sections_present(self, document):
        for heading in (
            "# Risk Assessment",
            "## Assessment pipeline",
            "## System model",
            "## Hazard identification",
            "## Risk register",
            "## Mitigation strategy",
            "## Appendix: O-RA risk matrix",
        ):
            assert heading in document

    def test_custom_title(self, result):
        text = assessment_document(result, title="Audit 2026-Q3")
        assert text.splitlines()[0] == "# Audit 2026-Q3"

    def test_pipeline_table_has_seven_phases(self, document):
        section = document.split("## Assessment pipeline")[1].split("##")[0]
        phase_rows = [
            line for line in section.splitlines() if line.startswith("| ")
        ]
        # header + 7 phases
        assert len(phase_rows) == 8

    def test_model_inventory_lists_components(self, document):
        assert "water_tank" in document
        assert "engineering_workstation" in document

    def test_risk_register_bolds_labels(self, document):
        assert "**VH**" in document or "**H**" in document

    def test_explanations_for_top_hazards(self, document):
        assert "## Why the top hazards happen" in document
        assert "towards r1" in document or "towards r2" in document

    def test_mitigation_section_mentions_plan(self, document, result):
        for mitigation in sorted(result.plan.deployed):
            assert "`%s`" % mitigation in document

    def test_appendix_matrix_matches_table1(self, document):
        appendix = document.split("## Appendix")[1]
        # top row is LM=VH: M H VH VH VH
        vh_row = [l for l in appendix.splitlines() if l.startswith("| VH")][0]
        cells = [c.strip() for c in vh_row.split("|")[2:-1]]
        assert cells == ["M", "H", "VH", "VH", "VH"]

    def test_valid_markdown_tables(self, document):
        """Every table row has the same number of pipes as its header."""
        lines = document.splitlines()
        for index, line in enumerate(lines):
            if line.startswith("|---"):
                width = line.count("|")
                block = [lines[index - 1]]
                cursor = index + 1
                while cursor < len(lines) and lines[cursor].startswith("|"):
                    block.append(lines[cursor])
                    cursor += 1
                assert all(row.count("|") == width for row in block)

"""Tests for JSON serialization of assessment artifacts."""

import json

import pytest

from repro.casestudy import build_system_model, static_requirements
from repro.core import AssessmentPipeline
from repro.epa import EpaReport, FaultRef, ScenarioOutcome
from repro.epa.results import PropagationStep
from repro.mitigation import BlockingProblem, optimize_asp
from repro.reporting import (
    assessment_to_dict,
    plan_to_dict,
    register_to_dict,
    report_to_dict,
    scenario_to_dict,
)
from repro.risk import RiskRegister
from repro.security import builtin_catalog


def outcome():
    return ScenarioOutcome(
        frozenset({FaultRef("s", "f")}),
        frozenset({"r1"}),
        {"s": frozenset({"value"})},
        frozenset({"hmi"}),
        {"r1": (PropagationStep("s", "v"),)},
        severity_rank=4,
    )


class TestScenarioSerialization:
    def test_fields(self):
        data = scenario_to_dict(outcome())
        assert data["faults"] == ["s.f"]
        assert data["violated"] == ["r1"]
        assert data["erroneous"] == {"s": ["value"]}
        assert data["detected_at"] == ["hmi"]
        assert data["severity_rank"] == 4
        assert data["paths"]["r1"][0] == {"source": "s", "target": "v"}

    def test_json_roundtrip(self):
        data = scenario_to_dict(outcome())
        assert json.loads(json.dumps(data)) == data


class TestReportSerialization:
    def test_counts_and_structure(self):
        report = EpaReport([outcome()], ["r1"], {"s": ("m",)})
        data = report_to_dict(report)
        assert data["scenario_count"] == 1
        assert data["violating_count"] == 1
        assert data["requirements"] == ["r1"]
        assert data["active_mitigations"] == {"s": ["m"]}
        assert data["violation_counts"] == {"r1": 1}
        json.dumps(data)


class TestRegisterAndPlanSerialization:
    def test_register(self):
        register = RiskRegister()
        register.add("x", "H", "VH", violated_requirements=["r1"])
        data = register_to_dict(register)
        assert data[0]["risk"] == "VH"
        json.dumps(data)

    def test_plan(self):
        problem = BlockingProblem()
        problem.add_mitigation("m", 5)
        problem.add_scenario("s", ["m"], "H")
        plan = optimize_asp(problem)
        data = plan_to_dict(plan)
        assert data["deployed"] == ["m"]
        assert data["complete"] is True
        json.dumps(data)


class TestAssessmentSerialization:
    @pytest.fixture(scope="class")
    def result(self):
        pipeline = AssessmentPipeline(
            static_requirements(), builtin_catalog(), max_faults=1
        )
        return pipeline.run(build_system_model())

    def test_full_document_is_json_safe(self, result):
        data = assessment_to_dict(result)
        text = json.dumps(data)
        restored = json.loads(text)
        assert restored["model"]["name"] == "water_tank_system"
        assert len(restored["phases"]) == 7
        assert restored["validation"]["ok"] is True
        assert restored["plan"] is not None
        assert restored["cost_benefit"]["worthwhile"] is True

    def test_mutation_entries(self, result):
        data = assessment_to_dict(result)
        kinds = {m["origin_kind"] for m in data["mutations"]}
        assert kinds == {"fault", "technique", "vulnerability"}

    def test_consistency_between_views(self, result):
        data = assessment_to_dict(result)
        assert data["report"]["violating_count"] == len(data["register"])

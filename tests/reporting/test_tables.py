"""Unit tests for table rendering and report builders."""

import pytest

from repro.casestudy import analysis_table
from repro.epa import EpaReport, FaultRef, ScenarioOutcome
from repro.reporting import (
    analysis_results_report,
    epa_report_table,
    propagation_path_report,
    render_markdown,
    render_matrix_grid,
    render_table,
    risk_matrix_report,
    risk_register_report,
)
from repro.risk import RiskRegister, iec61508_risk_matrix, ora_risk_matrix


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        # separator row present
        assert set(lines[1]) <= {"-", "+", " "}
        assert "longer" in lines[3]

    def test_title(self):
        text = render_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only_one"]])

    def test_markdown(self):
        text = render_markdown(["a", "b"], [[1, 2]])
        assert text.splitlines()[0] == "| a | b |"
        assert text.splitlines()[1] == "|---|---|"
        assert "| 1 | 2 |" in text

    def test_markdown_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_markdown(["a"], [[1, 2]])

    def test_matrix_grid(self):
        text = render_matrix_grid(
            ["r1", "r2"], ["c1", "c2"], lambda r, c: r + c
        )
        assert "r1c1" in text and "r2c2" in text


class TestRiskMatrixReport:
    def test_table_1_layout(self):
        """Table I renders with LM rows from VH down to VL."""
        text = risk_matrix_report(ora_risk_matrix())
        lines = [l for l in text.splitlines() if l and l[0] in "VLMH"]
        assert lines[0].startswith("VH")
        assert lines[-1].startswith("VL")
        # top-left data cell is M (LM=VH, LEF=VL)
        assert lines[0].split("|")[1].strip() == "M"

    def test_iec_matrix_renders(self):
        text = risk_matrix_report(iec61508_risk_matrix())
        assert "frequent" in text
        assert "IV" in text


class TestAnalysisResultsReport:
    def test_matches_paper_shape(self):
        rows = analysis_table(horizon=3)
        text = analysis_results_report(rows)
        lines = text.splitlines()
        header = [h.strip() for h in lines[2].split("|")]
        assert header[1:] == ["F1", "F2", "F3", "F4", "M1", "M2", "R1", "R2"]
        s2_line = [l for l in lines if l.startswith("S2")][0]
        assert s2_line.count("Violated") == 2


class TestEpaAndRegisterReports:
    def _report(self):
        outcome = ScenarioOutcome(
            frozenset({FaultRef("valve", "stuck")}),
            frozenset({"r1"}),
            {"valve": frozenset({"value"})},
            severity_rank=4,
        )
        return EpaReport([outcome], ["r1"])

    def test_epa_table(self):
        text = epa_report_table(self._report())
        assert "valve.stuck" in text
        assert "r1" in text

    def test_register_report_sorted(self):
        register = RiskRegister()
        register.add("low", "L", "L")
        register.add("high", "VH", "VH", violated_requirements=["r1"])
        text = risk_register_report(register)
        lines = text.splitlines()
        assert lines.index([l for l in lines if "high" in l][0]) < lines.index(
            [l for l in lines if l.startswith("low")][0]
        )

    def test_path_report(self):
        from repro.epa import PropagationStep

        outcome = ScenarioOutcome(
            frozenset({FaultRef("s", "f")}),
            frozenset({"r1"}),
            {},
            paths={
                "r1": (
                    PropagationStep("s", "c"),
                    PropagationStep("c", "v"),
                )
            },
        )
        text = propagation_path_report(outcome)
        assert "r1: s -> c -> v" in text

    def test_path_report_empty(self):
        outcome = ScenarioOutcome(frozenset(), frozenset(), {})
        assert "no propagation paths" in propagation_path_report(outcome)

"""Unit tests for risk matrices (Table I) and the FAIR tree (Fig. 2)."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.qualitative import QualitativeRange, five_level_scale
from repro.risk import (
    FairError,
    FairModel,
    RiskMatrixError,
    combine_frequency,
    combine_magnitude,
    combine_vulnerability,
    iec61508_risk_matrix,
    matrix_from_mapping,
    ora_risk_matrix,
)

LABELS = ("VL", "L", "M", "H", "VH")


class TestOraMatrix:
    """Table I of the paper, cell by cell."""

    # rows: LM from VH (top) to VL (bottom); columns: LEF VL..VH
    PAPER_TABLE = {
        "VH": ("M", "H", "VH", "VH", "VH"),
        "H": ("L", "M", "H", "VH", "VH"),
        "M": ("VL", "L", "M", "H", "VH"),
        "L": ("VL", "VL", "L", "M", "H"),
        "VL": ("VL", "VL", "VL", "L", "M"),
    }

    @pytest.mark.parametrize("lm", LABELS)
    @pytest.mark.parametrize("lef_index", range(5))
    def test_every_cell_matches_table_1(self, lm, lef_index):
        matrix = ora_risk_matrix()
        lef = LABELS[lef_index]
        assert matrix.classify(lm, lef) == self.PAPER_TABLE[lm][lef_index]

    def test_paper_worked_example(self):
        """Sec. IV-B: LM=M and LEF=L gives Risk=L."""
        assert ora_risk_matrix().classify("M", "L") == "L"

    def test_monotone(self):
        assert ora_risk_matrix().is_monotone()

    def test_outcomes_enumerates_25_cells(self):
        assert len(ora_risk_matrix().outcomes()) == 25

    def test_unknown_label_rejected(self):
        with pytest.raises(Exception):
            ora_risk_matrix().classify("XXL", "L")


class TestIec61508Matrix:
    def test_extreme_cells(self):
        matrix = iec61508_risk_matrix()
        assert matrix.classify("incredible", "negligible") == "IV"
        assert matrix.classify("frequent", "catastrophic") == "I"

    def test_monotone(self):
        assert iec61508_risk_matrix().is_monotone()

    def test_dimensions(self):
        matrix = iec61508_risk_matrix()
        assert len(matrix.outcomes()) == 24  # 6 x 4


class TestCustomMatrix:
    def test_missing_cell_rejected(self):
        scale = five_level_scale()
        with pytest.raises(RiskMatrixError):
            matrix_from_mapping("partial", scale, scale, scale, {})

    def test_wrong_row_count_rejected(self):
        from repro.risk import RiskMatrix
        scale = five_level_scale()
        with pytest.raises(RiskMatrixError):
            RiskMatrix("bad", scale, scale, scale, (("VL",) * 5,))

    def test_full_mapping_roundtrip(self):
        scale = five_level_scale()
        cells = {
            (row, column): "M"
            for row in scale.labels
            for column in scale.labels
        }
        matrix = matrix_from_mapping("flat", scale, scale, scale, cells)
        assert matrix.classify("VH", "VL") == "M"
        assert matrix.is_monotone()


class TestFairCombinators:
    def test_frequency_is_min(self):
        assert combine_frequency("H", "L") == "L"
        assert combine_frequency("VH", "VH") == "VH"

    def test_vulnerability_from_capability_gap(self):
        assert combine_vulnerability("VH", "VL") == "VH"
        assert combine_vulnerability("VL", "VH") == "VL"
        assert combine_vulnerability("M", "M") == "M"
        assert combine_vulnerability("H", "M") == "H"

    def test_magnitude_is_max(self):
        assert combine_magnitude("L", "H") == "H"
        assert combine_magnitude("VL", "VL") == "VL"

    @given(st.sampled_from(LABELS), st.sampled_from(LABELS))
    def test_frequency_commutative(self, a, b):
        assert combine_frequency(a, b) == combine_frequency(b, a)


class TestFairModel:
    def test_full_derivation(self):
        model = FairModel()
        derivation = model.derive(
            contact_frequency="H",
            probability_of_action="M",
            threat_capability="H",
            resistance_strength="L",
            primary_loss="H",
            secondary_lef="L",
            secondary_lm="M",
        )
        assert derivation.label("tef") == "M"
        assert derivation.label("vulnerability") == "VH"
        assert derivation.label("lef") == "M"
        assert derivation.label("lm") == "H"
        assert derivation.label("risk") == "H"

    def test_unknown_leaf_rejected(self):
        with pytest.raises(FairError):
            FairModel().derive(bogus_leaf="H")

    def test_missing_leaves_default_to_full_uncertainty(self):
        derivation = FairModel().derive(primary_loss="VL")
        assert not derivation.range("risk").is_exact

    def test_uncertain_input_propagates_to_range(self):
        scale = five_level_scale()
        derivation = FairModel().derive(
            contact_frequency="H",
            probability_of_action="H",
            threat_capability="M",
            resistance_strength="M",
            primary_loss=QualitativeRange(scale, "L", "VH"),
            secondary_lef="VL",
            secondary_lm="VL",
        )
        risk = derivation.range("risk")
        assert not risk.is_exact
        assert risk.low < risk.high or risk.low != risk.high

    def test_label_on_uncertain_attribute_raises(self):
        derivation = FairModel().derive()
        with pytest.raises(FairError):
            derivation.label("risk")

    def test_risk_label_direct_lookup(self):
        assert FairModel().risk_label("M", "L") == "L"

    def test_exact_inputs_give_exact_outputs(self):
        derivation = FairModel().derive(
            contact_frequency="M",
            probability_of_action="M",
            threat_capability="M",
            resistance_strength="M",
            primary_loss="M",
            secondary_lef="M",
            secondary_lm="M",
        )
        for attribute in ("tef", "vulnerability", "lef", "lm", "risk"):
            assert derivation.range(attribute).is_exact

    def test_range_monotone_in_input_width(self):
        """Widening an input range can only widen the output range."""
        scale = five_level_scale()
        base = dict(
            contact_frequency="H",
            probability_of_action="H",
            threat_capability="H",
            resistance_strength="L",
            secondary_lef="VL",
            secondary_lm="VL",
        )
        narrow = FairModel().derive(
            primary_loss=QualitativeRange(scale, "M", "H"), **base
        )
        wide = FairModel().derive(
            primary_loss=QualitativeRange(scale, "L", "VH"), **base
        )
        narrow_labels = set(narrow.range("risk").labels())
        wide_labels = set(wide.range("risk").labels())
        assert narrow_labels <= wide_labels

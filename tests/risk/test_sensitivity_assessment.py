"""Unit tests for sensitivity analysis (Sec. V-A) and the risk register."""

import pytest

from repro.qualitative import five_level_scale
from repro.risk import (
    RiskRegister,
    frequency_of_attack,
    frequency_of_simultaneous,
    full_factorial,
    magnitude_of_violations,
    one_at_a_time,
    ora_risk_matrix,
    rank_factors,
    requires_further_evaluation,
)

MATRIX = ora_risk_matrix()
SCALE = five_level_scale()


def risk(lm, lef):
    return MATRIX.classify(lm, lef)


class TestSensitivityPaperExample:
    """The exact worked example of Sec. V-A."""

    def test_lm_in_vl_l_is_insensitive(self):
        """LEF=L and LM in {VL, L}: Risk stays VL for both values."""
        results = one_at_a_time(
            risk, {"lef": "L"}, {"lm": ("VL", "L")}, SCALE
        )
        assert results[0].outputs == ("VL",)
        assert not results[0].sensitive

    def test_lm_in_l_vh_is_sensitive(self):
        """LM ranging L..VH: the output varies -> sensitive."""
        results = one_at_a_time(
            risk, {"lef": "L"}, {"lm": ("L", "M", "H", "VH")}, SCALE
        )
        assert results[0].sensitive
        assert len(results[0].outputs) > 1

    def test_sensitive_factor_flagged_for_further_evaluation(self):
        results = one_at_a_time(
            risk,
            {"lef": "L"},
            {"lm": ("L", "M", "H", "VH")},
            SCALE,
        )
        assert requires_further_evaluation(results) == ["lm"]


class TestSensitivityMachinery:
    def test_multiple_factors_ranked_by_spread(self):
        results = one_at_a_time(
            risk,
            {},
            {"lm": tuple("VL L M H VH".split()), "lef": ("L", "M")},
            SCALE,
        )
        ranked = rank_factors(results)
        assert ranked[0].factor == "lm"
        assert ranked[0].spread >= ranked[1].spread

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            one_at_a_time(risk, {}, {"lm": ()}, SCALE)

    def test_full_factorial_range(self):
        outcome = full_factorial(
            risk,
            {},
            {"lm": ("L", "M"), "lef": ("L", "M")},
            SCALE,
        )
        assert outcome.low == "VL"
        assert outcome.high == "M"

    def test_full_factorial_point(self):
        outcome = full_factorial(risk, {"lef": "M"}, {"lm": ("M",)}, SCALE)
        assert outcome.is_exact
        assert outcome.low == "M"


class TestRiskRegister:
    def test_entries_sorted_worst_first(self):
        register = RiskRegister()
        register.add("minor", "L", "L")
        register.add("major", "H", "VH")
        register.add("medium", "M", "M")
        names = [entry.scenario for entry in register]
        assert names == ["major", "medium", "minor"]

    def test_worst(self):
        register = RiskRegister()
        register.add("a", "VL", "VL")
        register.add("b", "VH", "VH")
        assert register.worst().scenario == "b"
        assert register.worst().risk == "VH"

    def test_above_threshold(self):
        register = RiskRegister()
        register.add("low", "L", "L")
        register.add("high", "VH", "VH")
        hot = register.above("H")
        assert [entry.scenario for entry in hot] == ["high"]

    def test_risk_label_follows_matrix(self):
        register = RiskRegister()
        entry = register.add("x", "L", "M")
        assert entry.risk == ora_risk_matrix().classify("M", "L")

    def test_by_scenario(self):
        register = RiskRegister()
        register.add("x", "L", "M")
        assert register.by_scenario("x").loss_magnitude == "M"
        with pytest.raises(KeyError):
            register.by_scenario("ghost")

    def test_empty_register(self):
        register = RiskRegister()
        assert register.worst() is None
        assert len(register) == 0


class TestEstimators:
    def test_single_fault_keeps_base_frequency(self):
        assert frequency_of_simultaneous(1, base="M") == "M"

    def test_more_simultaneous_faults_are_rarer(self):
        """The paper's S5-vs-S7 argument: same violations, but the
        probability of three simultaneous faults is much lower than two."""
        two = frequency_of_simultaneous(2)
        three = frequency_of_simultaneous(3)
        assert SCALE.index(three) < SCALE.index(two)

    def test_zero_faults(self):
        assert frequency_of_simultaneous(0) == "VL"

    def test_magnitude_of_violations_takes_worst(self):
        magnitudes = {"r1": "VH", "r2": "H"}
        assert magnitude_of_violations(["r2"], magnitudes) == "H"
        assert magnitude_of_violations(["r1", "r2"], magnitudes) == "VH"

    def test_no_violations_is_vl(self):
        assert magnitude_of_violations([], {}) == "VL"

    def test_unknown_requirement_uses_default(self):
        assert magnitude_of_violations(["rx"], {}, default="H") == "H"

    def test_attack_frequency_penalizes_difficulty(self):
        easy = frequency_of_attack(["L"])
        hard = frequency_of_attack(["H", "H"])
        assert SCALE.index(hard) < SCALE.index(easy)

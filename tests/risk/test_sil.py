"""Tests for IEC 61508 classification and SIL guidance."""

import pytest

from repro.risk import (
    RiskRegister,
    SilRecommendation,
    classify_from_ora,
    classify_hazard,
    iec61508_risk_matrix,
    sil_register,
)


class TestClassifyHazard:
    def test_worst_case_is_class_one_sil_four(self):
        recommendation = classify_hazard("frequent", "catastrophic")
        assert recommendation.risk_class == "I"
        assert recommendation.sil == 4
        assert not recommendation.acceptable

    def test_best_case_is_class_four_no_sil(self):
        recommendation = classify_hazard("incredible", "negligible")
        assert recommendation.risk_class == "IV"
        assert recommendation.sil is None
        assert recommendation.acceptable

    def test_classification_follows_matrix(self):
        matrix = iec61508_risk_matrix()
        for likelihood in matrix.row_space.labels:
            for consequence in matrix.column_space.labels:
                recommendation = classify_hazard(likelihood, consequence)
                assert recommendation.risk_class == matrix.classify(
                    likelihood, consequence
                )

    def test_sil_monotone_in_risk_class(self):
        """Worse classes never get a lower SIL target."""
        sils = []
        for risk_class in ("IV", "III", "II", "I"):
            # find a cell of that class
            matrix = iec61508_risk_matrix()
            for likelihood in matrix.row_space.labels:
                for consequence in matrix.column_space.labels:
                    if matrix.classify(likelihood, consequence) == risk_class:
                        recommendation = classify_hazard(
                            likelihood, consequence
                        )
                        sils.append(recommendation.sil or 0)
                        break
                else:
                    continue
                break
        assert sils == sorted(sils)

    def test_unknown_label_rejected(self):
        with pytest.raises(Exception):
            classify_hazard("sometimes", "bad")


class TestOraBridge:
    def test_high_security_risk_maps_to_demanding_class(self):
        recommendation = classify_from_ora("VH", "VH")
        assert recommendation.risk_class == "I"

    def test_low_security_risk_is_acceptable(self):
        recommendation = classify_from_ora("VL", "VL")
        assert recommendation.acceptable

    @pytest.mark.parametrize("lef", ["VL", "L", "M", "H", "VH"])
    @pytest.mark.parametrize("lm", ["VL", "L", "M", "H", "VH"])
    def test_total_over_ora_grid(self, lef, lm):
        recommendation = classify_from_ora(lef, lm)
        assert recommendation.risk_class in ("I", "II", "III", "IV")


class TestSilRegister:
    def test_register_classification(self):
        register = RiskRegister()
        register.add("worst", "VH", "VH")
        register.add("mild", "VL", "L")
        recommendations = sil_register(register)
        assert len(recommendations) == 2
        assert recommendations[0].risk_class == "I"  # worst-first order
        assert recommendations[1].acceptable

"""Unit and property tests for rough set theory."""

import pytest
from hypothesis import given, strategies as st

from repro.roughsets import (
    DecisionSystem,
    InformationSystem,
    RoughSetError,
    approximate,
    boundary_region,
    core,
    decision_rules,
    is_reduct,
    negative_region,
    positive_region,
    quality_of_classification,
    reducts,
)


def classic_table():
    """A small decision table with one inconsistency (x3 vs x4)."""
    system = DecisionSystem(["headache", "temp"], decision="flu")
    system.add("x1", {"headache": "yes", "temp": "high"}, "yes")
    system.add("x2", {"headache": "yes", "temp": "normal"}, "no")
    system.add("x3", {"headache": "no", "temp": "high"}, "yes")
    system.add("x4", {"headache": "no", "temp": "high"}, "no")
    system.add("x5", {"headache": "no", "temp": "normal"}, "no")
    return system


class TestInformationSystem:
    def test_indiscernibility_partition(self):
        system = classic_table()
        blocks = {frozenset(b) for b in system.indiscernibility_classes()}
        assert frozenset({"x3", "x4"}) in blocks
        assert frozenset({"x1"}) in blocks

    def test_projection_merges_blocks(self):
        system = classic_table()
        blocks = system.indiscernibility_classes(["headache"])
        sizes = sorted(len(b) for b in blocks)
        assert sizes == [2, 3]

    def test_equivalence_class(self):
        system = classic_table()
        assert system.equivalence_class("x3") == frozenset({"x3", "x4"})

    def test_indiscernible(self):
        system = classic_table()
        assert system.indiscernible("x3", "x4")
        assert not system.indiscernible("x1", "x2")
        assert system.indiscernible("x1", "x2", ["headache"])

    def test_duplicate_object_rejected(self):
        system = classic_table()
        with pytest.raises(RoughSetError):
            system.add("x1", {"headache": "no", "temp": "normal"}, "no")

    def test_missing_attribute_rejected(self):
        system = DecisionSystem(["a"], decision="d")
        with pytest.raises(RoughSetError):
            system.add("x", {}, "v")

    def test_decision_in_values_mapping(self):
        system = DecisionSystem(["a"], decision="d")
        system.add("x", {"a": 1, "d": "yes"})
        assert system.decision("x") == "yes"

    def test_consistency_detection(self):
        assert not classic_table().is_consistent()
        consistent = DecisionSystem(["a"], decision="d")
        consistent.add("x", {"a": 1}, "p")
        consistent.add("y", {"a": 2}, "q")
        assert consistent.is_consistent()


class TestApproximation:
    def test_lower_upper_boundary(self):
        system = classic_table()
        concept = system.concept("yes")  # {x1, x3}
        approximation = approximate(system, concept)
        assert approximation.lower == frozenset({"x1"})
        assert approximation.upper == frozenset({"x1", "x3", "x4"})
        assert approximation.boundary == frozenset({"x3", "x4"})
        assert approximation.negative == frozenset({"x2", "x5"})

    def test_accuracy(self):
        system = classic_table()
        approximation = approximate(system, system.concept("yes"))
        assert approximation.accuracy == pytest.approx(1 / 3)

    def test_crisp_concept(self):
        system = classic_table()
        approximation = approximate(system, ["x2", "x5"], ["temp"])
        assert approximation.is_crisp
        assert approximation.accuracy == 1.0

    def test_empty_concept(self):
        system = classic_table()
        approximation = approximate(system, [])
        assert approximation.lower == frozenset()
        assert approximation.accuracy == 1.0

    def test_unknown_object_in_concept_rejected(self):
        with pytest.raises(RoughSetError):
            approximate(classic_table(), ["ghost"])

    def test_negative_region_function(self):
        system = classic_table()
        assert negative_region(system, system.concept("yes")) == frozenset(
            {"x2", "x5"}
        )

    def test_positive_region_of_decision(self):
        system = classic_table()
        assert positive_region(system) == frozenset({"x1", "x2", "x5"})

    def test_boundary_region_of_decision(self):
        system = classic_table()
        assert boundary_region(system) == frozenset({"x3", "x4"})

    def test_quality_of_classification(self):
        assert quality_of_classification(classic_table()) == pytest.approx(0.6)

    def test_fewer_attributes_never_improve_quality(self):
        system = classic_table()
        full = quality_of_classification(system)
        assert quality_of_classification(system, ["headache"]) <= full
        assert quality_of_classification(system, ["temp"]) <= full


class TestReducts:
    def _consistent_table(self):
        system = DecisionSystem(["a", "b", "c"], decision="d")
        system.add("x1", {"a": 0, "b": 0, "c": 0}, "no")
        system.add("x2", {"a": 1, "b": 0, "c": 1}, "yes")
        system.add("x3", {"a": 0, "b": 1, "c": 1}, "yes")
        system.add("x4", {"a": 1, "b": 1, "c": 0}, "yes")
        return system

    def test_reducts_preserve_quality(self):
        system = self._consistent_table()
        full = quality_of_classification(system)
        for reduct in reducts(system):
            assert quality_of_classification(system, reduct) == full

    def test_reducts_are_minimal(self):
        system = self._consistent_table()
        for reduct in reducts(system):
            assert is_reduct(system, reduct)

    def test_core_is_intersection(self):
        system = self._consistent_table()
        all_reducts = reducts(system)
        expected = set(all_reducts[0])
        for reduct in all_reducts[1:]:
            expected &= set(reduct)
        assert core(system) == frozenset(expected)

    def test_single_attribute_reduct(self):
        system = DecisionSystem(["key", "noise"], decision="d")
        system.add("x1", {"key": 1, "noise": 9}, "a")
        system.add("x2", {"key": 2, "noise": 9}, "b")
        assert ("key",) in reducts(system)
        assert is_reduct(system, ("key",))
        assert not is_reduct(system, ("key", "noise"))


class TestDecisionRules:
    def test_certain_and_possible_rules(self):
        system = classic_table()
        rules = decision_rules(system)
        certain = [r for r in rules if r.certain]
        possible = [r for r in rules if not r.certain]
        assert certain and possible
        # the inconsistent block yields two possible rules
        assert len(possible) == 2

    def test_rule_matching(self):
        system = classic_table()
        rules = decision_rules(system)
        rule = [r for r in rules if r.certain and r.decision == "yes"][0]
        values = dict(rule.conditions)
        assert rule.matches(values)
        values_wrong = dict(values)
        values_wrong[rule.conditions[0][0]] = "something_else"
        assert not rule.matches(values_wrong)

    def test_support_counts(self):
        system = classic_table()
        rules = decision_rules(system)
        assert all(r.support >= 1 for r in rules)
        assert sum(r.support for r in rules) == len(system)


@given(
    st.lists(
        st.tuples(st.booleans(), st.booleans(), st.booleans()),
        min_size=1,
        max_size=24,
    )
)
def test_lower_subset_concept_subset_upper(rows):
    """Pawlak's inclusion chain: lower ⊆ X ⊆ upper, for random tables."""
    system = DecisionSystem(["a", "b"], decision="d")
    for index, (a, b, d) in enumerate(rows):
        system.add(index, {"a": a, "b": b}, d)
    concept = system.concept(True)
    approximation = approximate(system, concept)
    assert approximation.lower <= concept <= approximation.upper
    assert approximation.lower | approximation.boundary == approximation.upper


@given(
    st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 2), st.booleans()),
        min_size=1,
        max_size=20,
    )
)
def test_quality_monotone_in_attributes(rows):
    """gamma never decreases when attributes are added."""
    system = DecisionSystem(["a", "b"], decision="d")
    for index, (a, b, d) in enumerate(rows):
        system.add(index, {"a": a, "b": b}, d)
    assert quality_of_classification(system, ["a"]) <= quality_of_classification(
        system
    )

"""Unit tests for attack-graph generation."""

import pytest

from repro.casestudy import build_system_model
from repro.security import (
    AttackGraph,
    AttackGraphError,
    ThreatActor,
    builtin_catalog,
)


@pytest.fixture(scope="module")
def graph():
    return AttackGraph(
        build_system_model(), builtin_catalog(), ThreatActor("apt", "H")
    )


class TestConstruction:
    def test_entry_states_on_exposed_component(self, graph):
        entry_components = {
            component
            for component, technique in graph.states
            if graph.graph.has_edge("__outside__", (component, technique))
        }
        assert entry_components == {"engineering_workstation"}

    def test_lateral_movement_reaches_controllers(self, graph):
        assert graph.can_reach("in_valve_controller")
        assert graph.can_reach("out_valve_controller")

    def test_unexposed_model_has_empty_graph(self):
        model = build_system_model()
        model.element("engineering_workstation").properties["exposure"] = (
            "internal"
        )
        empty = AttackGraph(model, builtin_catalog())
        assert len(empty) == 0
        assert not empty.can_reach("in_valve_controller")

    def test_weak_actor_smaller_graph(self):
        strong = AttackGraph(
            build_system_model(), builtin_catalog(), ThreatActor("apt", "H")
        )
        weak = AttackGraph(
            build_system_model(), builtin_catalog(), ThreatActor("kid", "L")
        )
        assert len(weak) <= len(strong)


class TestPaths:
    def test_cheapest_path_starts_at_entry(self, graph):
        path = graph.cheapest_path("in_valve_controller")
        assert path.steps[0].component == "engineering_workstation"
        assert path.steps[-1].component == "in_valve_controller"
        assert path.cost > 0

    def test_cheapest_prefers_easy_techniques(self, graph):
        path = graph.cheapest_path("in_valve_controller")
        # T0865 (difficulty L) is the cheapest entry
        assert path.steps[0].technique == "T0865"

    def test_unreachable_target_raises(self):
        from repro.modeling import ElementType

        model = build_system_model()
        model.add_element(
            "air_gapped",
            "Air-gapped Logger",
            ElementType.NODE,
            {"component_type": "historian"},
        )
        isolated = AttackGraph(model, builtin_catalog(), ThreatActor("apt", "H"))
        with pytest.raises(AttackGraphError):
            isolated.cheapest_path("air_gapped")

    def test_all_paths_sorted_by_cost(self, graph):
        paths = graph.all_paths("in_valve_controller")
        assert paths
        costs = [p.cost for p in paths]
        assert costs == sorted(costs)

    def test_all_paths_respect_cutoff(self, graph):
        short = graph.all_paths("in_valve_controller", cutoff=2)
        assert all(len(p.steps) <= 2 for p in short)


class TestDefenseQueries:
    def test_choke_points_fractions(self, graph):
        chokes = graph.choke_points("in_valve_controller")
        assert chokes
        assert all(0 < fraction <= 1 for fraction in chokes.values())

    def test_cut_mitigations_block_every_path(self, graph):
        cut = graph.cut_mitigations("in_valve_controller")
        assert cut
        # every path must contain a technique countered by each cut mitigation
        catalog = builtin_catalog()
        for mitigation in cut:
            for path in graph.all_paths("in_valve_controller"):
                assert any(
                    mitigation
                    in catalog.technique(step.technique).mitigation_ids
                    for step in path.steps
                )

    def test_cut_mitigations_empty_for_unreachable(self):
        from repro.modeling import ElementType

        model = build_system_model()
        model.add_element(
            "air_gapped",
            "Air-gapped Logger",
            ElementType.NODE,
            {"component_type": "historian"},
        )
        isolated = AttackGraph(model, builtin_catalog(), ThreatActor("apt", "H"))
        assert isolated.cut_mitigations("air_gapped") == set()

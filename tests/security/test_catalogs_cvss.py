"""Unit tests for security catalogs and CVSS scoring."""

import pytest

from repro.security import (
    AttackPattern,
    CatalogError,
    CvssError,
    MitigationEntry,
    SecurityCatalog,
    Tactic,
    Technique,
    Vulnerability,
    Weakness,
    base_score,
    builtin_catalog,
    parse_vector,
    severity_rating,
    synthetic_catalog,
    to_ora_label,
)


class TestCatalogJoins:
    def test_builtin_contains_paper_entries(self):
        catalog = builtin_catalog()
        assert catalog.technique("T0866").name == "Exploitation of Remote Services"
        assert catalog.mitigation("M0917").name == "User Training"

    def test_mitigations_for_technique(self):
        catalog = builtin_catalog()
        mitigations = {
            m.identifier for m in catalog.mitigations_for_technique("T0865")
        }
        assert mitigations == {"M0917", "M0949"}

    def test_techniques_countered_by(self):
        catalog = builtin_catalog()
        countered = {
            t.identifier for t in catalog.techniques_countered_by("M0917")
        }
        assert "T0865" in countered and "T0817" in countered

    def test_techniques_in_tactic(self):
        catalog = builtin_catalog()
        initial_access = {
            t.identifier for t in catalog.techniques_in_tactic("TA0108")
        }
        assert {"T0865", "T0817", "T0866"} <= initial_access

    def test_techniques_for_platform(self):
        catalog = builtin_catalog()
        hmi_techniques = {
            t.identifier for t in catalog.techniques_for_platform("hmi")
        }
        assert "T0878" in hmi_techniques
        assert "T0865" not in hmi_techniques

    def test_version_specific_vulnerability_lookup(self):
        catalog = builtin_catalog()
        hits = catalog.vulnerabilities_for_product("eng_workstation_os", "10.1")
        assert len(hits) == 1
        assert catalog.vulnerabilities_for_product("eng_workstation_os", "11.0") == []
        # without a version every entry for the product matches
        assert catalog.vulnerabilities_for_product("eng_workstation_os")

    def test_patterns_exploiting_weakness(self):
        catalog = builtin_catalog()
        patterns = {p.identifier for p in catalog.patterns_exploiting("CWE-787")}
        assert "CAPEC-137" in patterns

    def test_patterns_using_technique(self):
        catalog = builtin_catalog()
        patterns = {p.identifier for p in catalog.patterns_using_technique("T0865")}
        assert "CAPEC-98" in patterns

    def test_unknown_identifier_raises(self):
        catalog = builtin_catalog()
        with pytest.raises(CatalogError):
            catalog.technique("T9999")
        with pytest.raises(CatalogError):
            catalog.mitigation("M9999")

    def test_duplicate_registration_rejected(self):
        catalog = SecurityCatalog()
        catalog.add_tactic(Tactic("TA1", "One"))
        with pytest.raises(CatalogError):
            catalog.add_tactic(Tactic("TA1", "Again"))

    def test_statistics(self):
        stats = builtin_catalog().statistics()
        assert stats["techniques"] == 8
        assert stats["mitigations"] == 6


class TestSyntheticCatalog:
    def test_sizes(self):
        catalog = synthetic_catalog(30, 10, 50, seed=1)
        stats = catalog.statistics()
        assert stats["techniques"] == 30
        assert stats["mitigations"] == 10
        assert stats["vulnerabilities"] == 50

    def test_deterministic(self):
        a = synthetic_catalog(10, 5, 10, seed=42)
        b = synthetic_catalog(10, 5, 10, seed=42)
        assert [t.identifier for t in a.techniques] == [
            t.identifier for t in b.techniques
        ]
        assert [t.mitigation_ids for t in a.techniques] == [
            t.mitigation_ids for t in b.techniques
        ]

    def test_every_technique_has_mitigations(self):
        catalog = synthetic_catalog(20, 5, 10, seed=3)
        assert all(t.mitigation_ids for t in catalog.techniques)

    def test_cvss_vectors_parse(self):
        catalog = synthetic_catalog(5, 3, 20, seed=7)
        for vulnerability in catalog.vulnerabilities:
            assert 0.0 <= base_score(vulnerability.cvss_vector) <= 10.0


class TestCvss:
    # reference scores from the FIRST CVSS v3.1 calculator
    KNOWN = [
        ("AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", 9.8),
        ("AV:N/AC:L/PR:N/UI:R/S:C/C:H/I:H/A:H", 9.6),
        ("AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N", 6.1),
        ("AV:A/AC:L/PR:N/UI:N/S:U/C:N/I:H/A:H", 8.1),
        ("AV:L/AC:L/PR:H/UI:N/S:U/C:L/I:L/A:L", 4.2),
        ("AV:N/AC:H/PR:N/UI:N/S:U/C:N/I:N/A:N", 0.0),
        ("AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N", 1.6),
    ]

    @pytest.mark.parametrize("vector,expected", KNOWN)
    def test_known_scores(self, vector, expected):
        assert base_score(vector) == pytest.approx(expected)

    def test_prefix_accepted(self):
        assert base_score("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H") == 9.8

    def test_missing_metric_rejected(self):
        with pytest.raises(CvssError):
            parse_vector("AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H")

    def test_invalid_value_rejected(self):
        with pytest.raises(CvssError):
            parse_vector("AV:X/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")

    def test_severity_rating_bands(self):
        assert severity_rating(0.0) == "None"
        assert severity_rating(3.9) == "Low"
        assert severity_rating(4.0) == "Medium"
        assert severity_rating(7.0) == "High"
        assert severity_rating(9.0) == "Critical"

    def test_ora_quantization(self):
        assert to_ora_label(0.0) == "VL"
        assert to_ora_label(5.0) == "M"
        assert to_ora_label(9.8) == "VH"

    def test_scope_changed_privileges_matter(self):
        unchanged = base_score("AV:N/AC:L/PR:H/UI:N/S:U/C:H/I:H/A:H")
        changed = base_score("AV:N/AC:L/PR:H/UI:N/S:C/C:H/I:H/A:H")
        assert changed > unchanged

"""Tests for the synthetic fleet generator and the attack-space count.

The fleet generator's contract is *exactness*: everything is a pure
function of the :class:`~repro.security.fleet.FleetSpec` — two builds
of one spec are byte-identical (including through an ArchiMate XML
round trip), and :meth:`~repro.security.fleet.FleetSpec.scenario_count`
predicts the EPA sweep's scenario count analytically.  The companion
differential pins :meth:`AttackScenarioSpace.size` against the real
enumeration across seeded fleet models — the analytic count must agree
with ``sum(1 for _ in scenarios())`` for every seed, actor capability
and chain bound.
"""

import pytest

from repro.modeling import from_xml, to_xml, validate
from repro.security import (
    AttackScenarioSpace,
    FleetSpec,
    ThreatActor,
    build_fleet_model,
    fleet_catalog,
    fleet_engine,
    fleet_fault_mitigations,
    fleet_models,
    fleet_requirements,
)

SMALL = FleetSpec(
    tiers=3,
    components_per_tier=3,
    fault_modes_per_component=2,
    max_faults=2,
)


class TestFleetModel:
    def test_deterministic_generation(self):
        first = to_xml(build_fleet_model(SMALL))
        second = to_xml(build_fleet_model(SMALL))
        assert first == second

    def test_seed_varies_architecture(self):
        pairs = list(fleet_models(SMALL, 3))
        assert [spec.seed for spec, _ in pairs] == [0, 1, 2]
        xmls = {to_xml(model) for _, model in pairs}
        assert len(xmls) == 3

    def test_model_validates_and_roundtrips(self):
        model = build_fleet_model(SMALL)
        assert validate(model).ok
        clone = from_xml(to_xml(model))
        assert to_xml(clone) == to_xml(model)
        assert len(clone.elements) == 9

    def test_entry_tier_is_exposed(self):
        model = build_fleet_model(SMALL)
        for position in range(SMALL.components_per_tier):
            element = model.element("t0_c%d" % position)
            assert element.properties["exposure"] == "public"

    def test_fault_modes_follow_spec(self):
        spec = FleetSpec(fault_modes_per_component=3)
        model = build_fleet_model(spec)
        for identifier in spec.component_ids():
            modes = model.element(identifier).properties["fault_modes"]
            assert [m["name"] for m in modes] == ["fm0", "fm1", "fm2"]

    def test_degenerate_spec_rejected(self):
        with pytest.raises(ValueError):
            build_fleet_model(FleetSpec(tiers=0))


class TestScenarioCounting:
    def test_counting_formula(self):
        assert SMALL.fault_pairs == 18
        # C(18,0) + C(18,1) + C(18,2)
        assert SMALL.scenario_count() == 1 + 18 + 153
        assert SMALL.scenario_count(max_faults=0) == 2 ** 18
        assert SMALL.scenario_count(max_faults=99) == 2 ** 18

    def test_engine_sweep_matches_count(self):
        engine = fleet_engine(SMALL)
        aggregate = engine.aggregate(max_faults=SMALL.max_faults)
        assert aggregate.scenarios == SMALL.scenario_count()

    def test_streamed_fleet_sweep_is_byte_identical(self):
        from repro.epa import ScenarioAggregate

        engine = fleet_engine(SMALL)
        report = engine.analyze(max_faults=SMALL.max_faults)
        magnitudes = {r.name: r.magnitude for r in engine.requirements}
        reference = ScenarioAggregate.from_report(report, magnitudes)
        streamed = fleet_engine(SMALL).aggregate(max_faults=SMALL.max_faults)
        assert streamed.dumps() == reference.dumps()


class TestFleetCatalog:
    def test_catalog_has_initial_access_layer(self):
        catalog = fleet_catalog(SMALL)
        entry = [
            t
            for t in catalog.techniques
            if t.identifier.startswith("T9A")
        ]
        assert len(entry) == 3
        assert all(t.difficulty == "L" for t in entry)
        assert all(t.induced_behaviour == "compromised" for t in entry)

    def test_fault_mitigations_cover_all_modes(self):
        mapping = fleet_fault_mitigations(SMALL)
        assert sorted(mapping) == ["fm0", "fm1"]
        catalog = fleet_catalog(SMALL)
        known = {m.identifier for m in catalog.mitigations}
        for mitigations in mapping.values():
            assert set(mitigations) <= known

    def test_requirements_focus_on_physical_tier(self):
        model = build_fleet_model(SMALL)
        requirements = fleet_requirements(SMALL, model)
        assert len(requirements) == SMALL.requirements
        for requirement in requirements:
            assert requirement.focus.startswith(
                "t%d_" % (SMALL.tiers - 1)
            )


class TestAttackSpaceSizeDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_size_matches_enumeration(self, seed):
        spec = FleetSpec(
            seed=seed,
            tiers=3,
            components_per_tier=3,
            fault_modes_per_component=2,
        )
        space = AttackScenarioSpace(
            build_fleet_model(spec),
            fleet_catalog(spec),
            actors=(
                ThreatActor("apt", "H"),
                ThreatActor("script_kiddie", "L"),
            ),
            max_chain=3,
        )
        assert space.size() == sum(1 for _ in space.scenarios())

    def test_size_respects_chain_bound(self):
        model = build_fleet_model(SMALL)
        catalog = fleet_catalog(SMALL)
        for bound in (1, 2, 4):
            space = AttackScenarioSpace(model, catalog, max_chain=bound)
            assert space.size() == sum(1 for _ in space.scenarios())

    def test_empty_space_when_no_entry(self):
        spec = FleetSpec(tiers=2, components_per_tier=2)
        model = build_fleet_model(spec)
        # a catalog without the grafted initial-access layer has no
        # entry points -> zero scenarios, analytically and enumerated
        from repro.security import synthetic_catalog

        bare = synthetic_catalog(seed=spec.seed)
        space = AttackScenarioSpace(model, bare)
        assert space.size() == 0
        assert sum(1 for _ in space.scenarios()) == 0

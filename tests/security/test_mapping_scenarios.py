"""Unit tests for mutation mapping and the attack-scenario space."""

import pytest

from repro.casestudy import build_system_model
from repro.modeling import SystemModel, standard_cps_library, RelationshipType
from repro.security import (
    AttackScenarioSpace,
    ThreatActor,
    applicable_techniques,
    applicable_vulnerabilities,
    builtin_catalog,
    candidate_mutations,
    mitigations_for_mutation,
)


@pytest.fixture
def catalog():
    return builtin_catalog()


@pytest.fixture
def model():
    return build_system_model()


class TestTechniqueApplicability:
    def test_exposed_workstation_gets_phishing(self, catalog, model):
        workstation = model.element("engineering_workstation")
        identifiers = {
            t.identifier for t in applicable_techniques(catalog, workstation)
        }
        assert "T0865" in identifiers  # spearphishing needs email exposure

    def test_internal_controller_no_initial_access(self, catalog, model):
        controller = model.element("tank_controller")
        identifiers = {
            t.identifier for t in applicable_techniques(catalog, controller)
        }
        assert "T0866" not in identifiers  # initial access needs exposure
        assert "T0855" in identifiers  # post-access technique still applies

    def test_platform_mismatch_excluded(self, catalog, model):
        sensor = model.element("level_sensor")
        identifiers = {
            t.identifier for t in applicable_techniques(catalog, sensor)
        }
        assert "T0855" not in identifiers  # targets controllers/actuators
        assert "T0856" in identifiers  # spoof reporting targets sensors


class TestVulnerabilityMatching:
    def test_version_match(self, catalog, model):
        workstation = model.element("engineering_workstation")
        hits = applicable_vulnerabilities(catalog, workstation)
        assert [v.identifier for v in hits] == ["CVE-9001-0001"]

    def test_version_mismatch(self, catalog):
        library = standard_cps_library()
        model = SystemModel("m")
        library.instantiate(
            model,
            "workstation",
            "ws",
            properties={"software": "eng_workstation_os:12.0"},
        )
        assert applicable_vulnerabilities(catalog, model.element("ws")) == []

    def test_software_stack_list(self, catalog):
        library = standard_cps_library()
        model = SystemModel("m")
        library.instantiate(
            model,
            "workstation",
            "ws",
            properties={
                "software_stack": [
                    "eng_workstation_os:10.2",
                    "workstation_browser:99.0",
                ]
            },
        )
        hits = applicable_vulnerabilities(catalog, model.element("ws"))
        assert {v.identifier for v in hits} == {
            "CVE-9001-0001",
            "CVE-9001-0002",
        }


class TestCandidateMutations:
    def test_includes_all_three_origins(self, catalog, model):
        mutations = candidate_mutations(model, catalog)
        origins = {m.origin_kind for m in mutations}
        assert origins == {"fault", "technique", "vulnerability"}

    def test_fault_only_without_catalog(self, model):
        mutations = candidate_mutations(model)
        assert all(m.origin_kind == "fault" for m in mutations)

    def test_paper_fault_modes_present(self, catalog, model):
        mutations = candidate_mutations(model, catalog)
        pairs = {(m.component, m.fault) for m in mutations}
        assert ("input_valve", "stuck_at_open") in pairs
        assert ("output_valve", "stuck_at_closed") in pairs
        assert ("hmi", "no_signal") in pairs
        assert ("engineering_workstation", "infected") in pairs

    def test_cvss_severity_mapped_to_ora(self, catalog, model):
        mutations = candidate_mutations(model, catalog)
        cve = [m for m in mutations if m.origin == "CVE-9001-0001"][0]
        assert cve.severity == "VH"  # 9.8 critical

    def test_mitigations_for_technique_mutation(self, catalog, model):
        mutations = candidate_mutations(model, catalog)
        phishing = [m for m in mutations if m.origin == "T0865"][0]
        assert set(mitigations_for_mutation(catalog, phishing)) == {
            "M0917",
            "M0949",
        }

    def test_mitigations_for_vulnerability_is_patching(self, catalog, model):
        mutations = candidate_mutations(model, catalog)
        cve = [m for m in mutations if m.origin == "CVE-9001-0001"][0]
        assert mitigations_for_mutation(catalog, cve) == ["M0926"]


class TestScenarioSpace:
    def _space(self, model, catalog, **kwargs):
        return AttackScenarioSpace(
            model,
            catalog,
            actors=[ThreatActor("apt", "H"), ThreatActor("script_kiddie", "L")],
            **kwargs,
        )

    def test_assets(self, catalog, model):
        space = self._space(model, catalog)
        assert "water_tank" in space.assets()
        assert "engineering_workstation" in space.assets()

    def test_entry_points_require_exposure(self, catalog, model):
        space = self._space(model, catalog)
        entries = space.entry_points(ThreatActor("apt", "H"))
        assert all(s.component == "engineering_workstation" for s in entries)
        assert entries  # the workstation is email-exposed

    def test_weak_actor_has_fewer_entries(self, catalog, model):
        space = self._space(model, catalog)
        strong = space.entry_points(ThreatActor("apt", "H"))
        weak = space.entry_points(ThreatActor("kiddie", "L"))
        assert len(weak) <= len(strong)
        assert all(s.technique == "T0865" for s in weak)  # only the easy one

    def test_scenarios_follow_propagation_edges(self, catalog, model):
        space = self._space(model, catalog, max_chain=2)
        scenarios = list(space.scenarios())
        assert scenarios
        graph = model.propagation_graph()
        for scenario in scenarios:
            for a, b in zip(scenario.components, scenario.components[1:]):
                assert graph.has_edge(a, b)

    def test_chain_length_bounded(self, catalog, model):
        space = self._space(model, catalog, max_chain=2)
        assert all(len(s.steps) <= 2 for s in space.scenarios())

    def test_longer_chains_grow_the_space(self, catalog, model):
        short = self._space(model, catalog, max_chain=1).size()
        longer = self._space(model, catalog, max_chain=3).size()
        assert longer > short

    def test_mutations_for_scenario(self, catalog, model):
        space = self._space(model, catalog, max_chain=2)
        scenario = next(iter(space.scenarios()))
        mutations = space.mutations_for(scenario)
        assert len(mutations) == len(scenario.steps)
        assert all(m.origin_kind == "technique" for m in mutations)

    def test_blocking_mitigations_per_step(self, catalog, model):
        space = self._space(model, catalog, max_chain=1)
        scenario = next(iter(space.scenarios()))
        blockers = space.blocking_mitigations(scenario)
        assert len(blockers) == 1
        assert blockers[0]  # initial-access techniques have mitigations

    def test_methods_map(self, catalog, model):
        space = self._space(model, catalog)
        methods = space.methods()
        assert "T0856" in methods["level_sensor"]

"""Property-based tests of the attack-scenario space on synthetic
catalogs and randomized model topologies."""

from hypothesis import given, settings, strategies as st

from repro.modeling import RelationshipType, SystemModel, standard_cps_library
from repro.security import (
    AttackScenarioSpace,
    ThreatActor,
    builtin_catalog,
    synthetic_catalog,
)

TYPES = ("workstation", "controller", "sensor", "actuator", "hmi")


def build_random_model(type_choices, edges, exposures):
    library = standard_cps_library()
    model = SystemModel("random")
    for index, type_name in enumerate(type_choices):
        properties = {}
        if exposures[index]:
            properties["exposure"] = "public"
        library.instantiate(
            model, type_name, "c%d" % index, properties=properties
        )
    n = len(type_choices)
    for a, b in edges:
        source, target = "c%d" % (a % n), "c%d" % (b % n)
        if source != target:
            model.add_relationship(
                source, target, RelationshipType.FLOW, check=False
            )
    return model


model_specs = st.tuples(
    st.lists(st.sampled_from(TYPES), min_size=2, max_size=5),
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
        min_size=1,
        max_size=8,
    ),
    st.lists(st.booleans(), min_size=5, max_size=5),
)


@settings(max_examples=40, deadline=None)
@given(model_specs, st.integers(min_value=1, max_value=3))
def test_chains_follow_topology_and_bound(spec, max_chain):
    types, edges, exposures = spec
    model = build_random_model(types, edges, exposures)
    space = AttackScenarioSpace(
        model,
        builtin_catalog(),
        actors=[ThreatActor("a", "H")],
        max_chain=max_chain,
    )
    graph = model.propagation_graph()
    for scenario in space.scenarios():
        assert 1 <= len(scenario.steps) <= max_chain
        components = scenario.components
        assert len(set(components)) == len(components)  # no revisits
        for a, b in zip(components, components[1:]):
            assert graph.has_edge(a, b)


@settings(max_examples=25, deadline=None)
@given(model_specs)
def test_space_deterministic(spec):
    types, edges, exposures = spec
    model = build_random_model(types, edges, exposures)

    def enumerate_once():
        space = AttackScenarioSpace(
            model,
            builtin_catalog(),
            actors=[ThreatActor("a", "H")],
            max_chain=2,
        )
        return [str(s) for s in space.scenarios()]

    assert enumerate_once() == enumerate_once()


@settings(max_examples=25, deadline=None)
@given(model_specs)
def test_every_scenario_step_has_executable_technique(spec):
    types, edges, exposures = spec
    model = build_random_model(types, edges, exposures)
    catalog = builtin_catalog()
    actor = ThreatActor("a", "M")
    space = AttackScenarioSpace(model, catalog, [actor], max_chain=3)
    for scenario in space.scenarios():
        for step in scenario.steps:
            technique = catalog.technique(step.technique)
            assert actor.can_execute(technique)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_synthetic_catalog_scenarios_reproducible(seed):
    catalog = synthetic_catalog(techniques=15, mitigations=5, seed=seed)
    library = standard_cps_library()
    model = SystemModel("m")
    library.instantiate(
        model, "workstation", "ws", properties={"exposure": "public"}
    )
    library.instantiate(model, "controller", "plc")
    model.add_relationship("ws", "plc", RelationshipType.FLOW)
    space = AttackScenarioSpace(
        model, catalog, [ThreatActor("a", "H")], max_chain=2
    )
    first = [str(s) for s in space.scenarios()]
    second = [str(s) for s in space.scenarios()]
    assert first == second

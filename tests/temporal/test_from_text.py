"""Tests for the Telingo-style sectioned input format."""

import pytest

from repro.asp import atom
from repro.temporal import TemporalError, TemporalProgram

TANK = """
% static knowledge (before any marker)
next_level(normal, high). next_level(high, overflow).

#program initial.
level(normal).

#program dynamic.
{ rise }.
level(L2) :- rise, prev_level(L1), next_level(L1, L2).
level(L) :- prev_level(L), not rise.
level(overflow) :- rise, prev_level(overflow).

#program always.
alarm :- level(overflow).

#program final.
settled :- level(L).
"""


class TestFromText:
    def test_sections_are_routed(self):
        program = TemporalProgram.from_text(TANK)
        models = program.solve(horizon=2)
        assert len(models) == 4  # rise free at steps 1, 2

    def test_static_preamble(self):
        program = TemporalProgram.from_text(TANK)
        model = program.solve(horizon=1)[0]
        # static facts visible at every step
        assert model.holds(atom("next_level", "normal", "high"), 0)

    def test_dynamic_semantics_match_manual_construction(self):
        from_text = TemporalProgram.from_text(TANK)
        manual = TemporalProgram()
        manual.add_static("next_level(normal, high). next_level(high, overflow).")
        manual.add_initial("level(normal).")
        manual.add_dynamic(
            """
            { rise }.
            level(L2) :- rise, prev_level(L1), next_level(L1, L2).
            level(L) :- prev_level(L), not rise.
            level(overflow) :- rise, prev_level(overflow).
            """
        )
        manual.add_always("alarm :- level(overflow).")
        manual.add_final("settled :- level(L).")

        def level_traces(program):
            return sorted(
                tuple(
                    tuple(sorted(str(a) for a in state if a.predicate == "level"))
                    for state in model.trace
                )
                for model in program.solve(horizon=3)
            )

        assert level_traces(from_text) == level_traces(manual)

    def test_final_section_applies_at_horizon(self):
        program = TemporalProgram.from_text(TANK)
        model = program.solve(horizon=2)[0]
        assert model.holds(atom("settled"), 2)
        assert not model.holds(atom("settled"), 0)

    def test_always_section(self):
        program = TemporalProgram.from_text(TANK)
        overflowing = [
            model
            for model in program.solve(horizon=2)
            if model.holds(atom("level", "overflow"), 2)
        ]
        assert overflowing
        assert all(m.holds(atom("alarm"), 2) for m in overflowing)

    def test_unknown_section_rejected(self):
        with pytest.raises(TemporalError):
            TemporalProgram.from_text("#program sometimes.\na.")

    def test_requirements_can_be_added_after_parsing(self):
        program = TemporalProgram.from_text(TANK)
        program.add_requirement("safe", "G ~level(overflow)")
        models = program.solve(horizon=2)
        violated = [m for m in models if m.violated_requirements]
        assert len(violated) == 1  # only the rise-rise trace

"""Unit tests for the LTLf formula language and finite-trace semantics."""

import pytest

from repro.asp import atom
from repro.temporal import (
    And,
    Eventually,
    Globally,
    LtlError,
    Next,
    Not,
    Or,
    Prop,
    Release,
    TraceError,
    Until,
    WeakNext,
    evaluate,
    parse_ltl,
    violations,
)


def trace(*states):
    """Build a trace from iterables of 'pred' / ('pred', args...) specs."""
    result = []
    for state in states:
        atoms = set()
        for spec in state:
            if isinstance(spec, str):
                atoms.add(atom(spec))
            else:
                atoms.add(atom(spec[0], *spec[1:]))
        result.append(atoms)
    return result


P = Prop(atom("p"))
Q = Prop(atom("q"))


class TestParser:
    def test_atomic_proposition(self):
        formula = parse_ltl("overflow")
        assert formula == Prop(atom("overflow"))

    def test_proposition_with_arguments(self):
        formula = parse_ltl("level(tank, high)")
        assert formula == Prop(atom("level", "tank", "high"))

    def test_negation(self):
        assert parse_ltl("~p") == Not(P)

    def test_boolean_connectives(self):
        assert parse_ltl("p & q") == And(P, Q)
        assert parse_ltl("p | q") == Or(P, Q)

    def test_implication_desugars(self):
        assert parse_ltl("p -> q") == Or(Not(P), Q)

    def test_unary_temporal_operators(self):
        assert parse_ltl("X p") == Next(P)
        assert parse_ltl("WX p") == WeakNext(P)
        assert parse_ltl("F p") == Eventually(P)
        assert parse_ltl("G p") == Globally(P)

    def test_until_and_release(self):
        assert parse_ltl("p U q") == Until(P, Q)
        assert parse_ltl("p R q") == Release(P, Q)

    def test_weak_until_desugars(self):
        assert parse_ltl("p W q") == Or(Until(P, Q), Globally(P))

    def test_precedence_unary_binds_tighter(self):
        assert parse_ltl("G p & q") == And(Globally(P), Q)
        assert parse_ltl("G (p & q)") == Globally(And(P, Q))

    def test_nested_formula(self):
        formula = parse_ltl("G (request -> F response)")
        assert isinstance(formula, Globally)

    def test_prop_starting_with_operator_letter(self):
        # 'good' starts with 'G' lowercase is fine; but operator 'G' must
        # not swallow identifiers
        assert parse_ltl("good") == Prop(atom("good"))

    def test_error_on_garbage(self):
        with pytest.raises(LtlError):
            parse_ltl("p &")
        with pytest.raises(LtlError):
            parse_ltl("(p")
        with pytest.raises(LtlError):
            parse_ltl("p ? q")

    def test_non_ground_proposition_rejected(self):
        with pytest.raises(LtlError):
            parse_ltl("level(X)")


class TestSemantics:
    def test_prop_at_position(self):
        t = trace(["p"], [])
        assert evaluate(P, t, 0)
        assert not evaluate(P, t, 1)

    def test_boolean_operators(self):
        t = trace(["p"])
        assert evaluate(Or(P, Q), t)
        assert not evaluate(And(P, Q), t)
        assert evaluate(Not(Q), t)

    def test_next_requires_successor(self):
        t = trace([], ["p"])
        assert evaluate(Next(P), t, 0)
        assert not evaluate(Next(P), t, 1)  # last state: strong next fails

    def test_weak_next_true_at_end(self):
        t = trace([], ["p"])
        assert evaluate(WeakNext(P), t, 1)
        assert evaluate(WeakNext(P), t, 0)
        t2 = trace([], [])
        assert not evaluate(WeakNext(P), t2, 0)
        assert evaluate(WeakNext(P), t2, 1)

    def test_eventually(self):
        t = trace([], [], ["p"])
        assert evaluate(Eventually(P), t, 0)
        assert evaluate(Eventually(P), t, 2)
        assert not evaluate(Eventually(Q), t, 0)

    def test_globally(self):
        t = trace(["p"], ["p"], ["p"])
        assert evaluate(Globally(P), t, 0)
        t2 = trace(["p"], [], ["p"])
        assert not evaluate(Globally(P), t2, 0)
        assert evaluate(Globally(P), t2, 2)

    def test_until(self):
        t = trace(["p"], ["p"], ["q"])
        assert evaluate(Until(P, Q), t, 0)
        # until fails when q never arrives
        t2 = trace(["p"], ["p"], ["p"])
        assert not evaluate(Until(P, Q), t2, 0)
        # q immediately satisfies until regardless of p
        t3 = trace(["q"], [])
        assert evaluate(Until(P, Q), t3, 0)

    def test_until_requires_left_up_to_right(self):
        t = trace(["p"], [], ["q"])
        assert not evaluate(Until(P, Q), t, 0)

    def test_release(self):
        # q must hold until (and including when) p releases it
        t = trace(["q"], ["q", "p"], [])
        assert evaluate(Release(P, Q), t, 0)
        # q fails before release
        t2 = trace(["q"], [], ["p"])
        assert not evaluate(Release(P, Q), t2, 0)
        # no release: q must hold throughout
        t3 = trace(["q"], ["q"], ["q"])
        assert evaluate(Release(P, Q), t3, 0)

    def test_empty_trace_raises(self):
        with pytest.raises(TraceError):
            evaluate(P, [], 0)

    def test_position_out_of_range_raises(self):
        with pytest.raises(TraceError):
            evaluate(P, trace(["p"]), 5)

    def test_violations_lists_positions(self):
        t = trace(["p"], [], ["p"])
        assert violations(P, t) == [1]

    def test_safety_requirement_from_paper(self):
        """R1: the water tank should not overflow — G ~overflow."""
        r1 = parse_ltl("G ~overflow")
        safe = trace(["normal"], ["high"], ["high"])
        unsafe = trace(["normal"], ["high"], ["overflow"])
        assert evaluate(r1, safe)
        assert not evaluate(r1, unsafe)

    def test_alert_requirement_from_paper(self):
        """R2: an alert must follow an overflow — G (overflow -> F alert)."""
        r2 = parse_ltl("G (overflow -> F alert)")
        alerted = trace([], ["overflow"], ["alert"])
        silent = trace([], ["overflow"], [])
        assert evaluate(r2, alerted)
        assert not evaluate(r2, silent)


class TestSubformulas:
    def test_postorder_includes_all(self):
        formula = parse_ltl("G (p -> F q)")
        subs = list(formula.subformulas())
        assert subs[-1] == formula
        assert Prop(atom("p")) in subs
        assert Prop(atom("q")) in subs

    def test_rendering_roundtrip(self):
        text = "G (p | (q U r))"
        formula = parse_ltl(text)
        assert parse_ltl(str(formula)) == formula

"""Unit tests for the Telingo-style temporal program layer."""

import pytest

from repro.asp import atom
from repro.temporal import TemporalError, TemporalProgram, evaluate, parse_ltl


def simple_counter(horizon=3):
    """A deterministic counter: value increments each step."""
    tp = TemporalProgram()
    tp.add_initial("value(0).")
    tp.add_dynamic("value(X + 1) :- prev_value(X).")
    return tp


class TestUnrolling:
    def test_deterministic_program_has_one_model(self):
        models = simple_counter().solve(horizon=3)
        assert len(models) == 1

    def test_trace_states(self):
        model = simple_counter().solve(horizon=3)[0]
        for step in range(4):
            assert model.holds(atom("value", step), step)

    def test_initial_only_at_step_zero(self):
        tp = TemporalProgram()
        tp.add_initial("boot.")
        tp.add_dynamic("running :- prev_boot.")
        model = tp.solve(horizon=2)[0]
        assert model.holds(atom("boot"), 0)
        assert not model.holds(atom("boot"), 1)
        assert model.holds(atom("running"), 1)
        assert not model.holds(atom("running"), 2)

    def test_always_rules_hold_everywhere(self):
        tp = TemporalProgram()
        tp.add_always("tick.")
        model = tp.solve(horizon=2)[0]
        assert all(model.holds(atom("tick"), t) for t in range(3))

    def test_final_rules_hold_only_at_horizon(self):
        tp = TemporalProgram()
        tp.add_always("tick.")
        tp.add_final("done :- tick.")
        model = tp.solve(horizon=2)[0]
        assert model.holds(atom("done"), 2)
        assert not model.holds(atom("done"), 0)

    def test_static_predicates_visible_at_every_step(self):
        tp = TemporalProgram()
        tp.add_static("component(tank).")
        tp.add_initial("ok :- component(tank).")
        model = tp.solve(horizon=1)[0]
        assert model.holds(atom("component", "tank"), 0)
        assert model.holds(atom("component", "tank"), 1)

    def test_frame_rule_persistence(self):
        tp = TemporalProgram()
        tp.add_initial("state(on).")
        tp.add_dynamic("state(X) :- prev_state(X).")
        model = tp.solve(horizon=4)[0]
        assert all(model.holds(atom("state", "on"), t) for t in range(5))

    def test_choice_in_dynamic_generates_branching(self):
        tp = TemporalProgram()
        tp.add_dynamic("{ act }.")
        models = tp.solve(horizon=2)
        assert len(models) == 4  # act free at steps 1 and 2

    def test_negative_horizon_rejected(self):
        with pytest.raises(TemporalError):
            simple_counter().unroll(-1)

    def test_horizon_zero_initial_only(self):
        tp = TemporalProgram()
        tp.add_initial("a.")
        tp.add_dynamic("b :- prev_a.")
        models = tp.solve(horizon=0)
        assert len(models) == 1
        assert models[0].holds(atom("a"), 0)

    def test_prev_on_static_predicate_rejected(self):
        tp = TemporalProgram()
        tp.add_static("component(tank).")
        tp.add_dynamic("bad :- prev_component(tank).")
        with pytest.raises(TemporalError):
            tp.solve(horizon=1)


class TestRequirements:
    def _tank(self):
        tp = TemporalProgram()
        tp.add_initial("level(normal).")
        tp.add_dynamic(
            """
            { rise }.
            level(high) :- rise, prev_level(normal).
            level(overflow) :- rise, prev_level(high).
            level(overflow) :- rise, prev_level(overflow).
            level(X) :- prev_level(X), not rise.
            """
        )
        return tp

    def test_violation_flagged(self):
        tp = self._tank()
        tp.add_requirement("no_overflow", "G ~level(overflow)")
        models = tp.solve(horizon=2)
        flagged = [m for m in models if "no_overflow" in m.violated_requirements]
        assert len(models) == 4
        assert len(flagged) == 1  # only rise-rise overflows in 2 steps

    def test_enforced_requirement_prunes_models(self):
        tp = self._tank()
        tp.add_requirement("no_overflow", "G ~level(overflow)", enforce=True)
        models = tp.solve(horizon=2)
        assert len(models) == 3
        assert all(not m.violated_requirements for m in models)

    def test_duplicate_requirement_name_rejected(self):
        tp = self._tank()
        tp.add_requirement("r", "G ~level(overflow)")
        with pytest.raises(TemporalError):
            tp.add_requirement("r", "F level(high)")

    def test_eventually_requirement(self):
        tp = self._tank()
        tp.add_requirement("reaches_high", "F level(high)")
        models = tp.solve(horizon=2)
        satisfied = [
            m for m in models if "reaches_high" not in m.violated_requirements
        ]
        # any trace with at least one rise from normal reaches high
        assert len(satisfied) == 3

    def test_compiled_status_matches_trace_semantics(self):
        """The ASP-compiled LTL valuation must agree with direct
        finite-trace evaluation on every model and requirement."""
        tp = self._tank()
        specs = {
            "a": "G ~level(overflow)",
            "b": "F level(high)",
            "c": "level(normal) U level(high)",
            "d": "X level(high)",
            "e": "WX level(high)",
            "f": "rise R level(normal)",
        }
        for name, text in specs.items():
            tp.add_requirement(name, text)
        for model in tp.solve(horizon=3):
            for name, text in specs.items():
                expected_violated = not evaluate(parse_ltl(text), model.trace)
                assert model.requirement_status[name] == expected_violated, (
                    name,
                    model.trace,
                )


class TestTraceExtraction:
    def test_internal_atoms_hidden(self):
        tp = simple_counter()
        model = tp.solve(horizon=1)[0]
        for state in model.trace:
            assert all(not a.predicate.startswith("__") for a in state)

    def test_lift_via_control(self):
        tp = simple_counter()
        control = tp.control(horizon=2)
        raw = control.first_model()
        lifted = tp.lift(raw, horizon=2)
        assert lifted.holds(atom("value", 2), 2)

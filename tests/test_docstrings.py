"""Documentation lint: every public module in ``src/repro`` has a docstring.

The paper pitches the tool at "analysts of average skills"; an importable
module without a docstring is an undocumented room in that tool.  This
check parses each source file with :mod:`ast` (no imports are executed)
and fails with the list of offenders.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def public_modules():
    """All non-private module files under ``src/repro``."""
    return sorted(
        path
        for path in SRC.rglob("*.py")
        if not any(part.startswith("_") and part != "__init__.py" for part in path.parts)
        or path.name == "__init__.py"
    )


def test_source_tree_found():
    assert SRC.is_dir()
    assert (SRC / "__init__.py").is_file()
    assert len(public_modules()) > 50


def test_every_public_module_has_a_docstring():
    missing = []
    for path in public_modules():
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        docstring = ast.get_docstring(tree)
        if not docstring or not docstring.strip():
            missing.append(str(path.relative_to(SRC.parent)))
    assert not missing, "modules lacking a module docstring: %s" % ", ".join(missing)


def test_package_inits_document_their_exports():
    # every package docstring should be substantive, not a placeholder
    for init in public_modules():
        if init.name != "__init__.py":
            continue
        docstring = ast.get_docstring(ast.parse(init.read_text(encoding="utf-8")))
        assert docstring and len(docstring.split()) >= 5, (
            "%s has a trivial package docstring" % init
        )
